//! The `Partition_evaluate` heuristic (Figure 3 of the paper).
//!
//! For every TAM count `B` in the configured range and every unique
//! partition of the total width `W` into `B` parts, the partition is
//! scored with the `Core_assign` heuristic, carrying the best-known SOC
//! testing time `τ` across evaluations so that most partitions abort
//! early (pruning level 2). The result is the paper's *intermediate*
//! solution to *P_PAW* / *P_NPAW*; the final exact optimization step
//! lives in [`crate::pipeline`].
//!
//! The enumeration runs on the deterministic chunked executor of
//! [`tamopt_engine`]: partitions are split into index-ordered chunks,
//! chunks of one generation are scored concurrently against a shared
//! [`SharedIncumbent`] `τ`-bound, and results reduce in chunk order —
//! the winner is the lowest-indexed partition achieving the best time,
//! so `threads = N` is bit-identical to `threads = 1` (statistics
//! included). A [`SearchBudget`] bounds the whole scan; a truncated run
//! still returns the best partition of the generations that finished.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};
use tamopt_assign::{
    core_assign_into, AssignError, AssignResult, AssignScratch, CoreAssignOptions, CostMatrix,
    TamSet,
};
use tamopt_engine::{search_chunks_with, ParallelConfig, Ranking, SearchBudget, SharedIncumbent};
use tamopt_wrapper::TimeTable;

use crate::enumerate::Partitions;
use crate::PartitionError;

/// Pruning statistics of one `Partition_evaluate` run — the quantities
/// behind the paper's Table 1.
///
/// The counting unit is defined by the producing search: here and in
/// [`crate::pipeline`] it is **partitions**; the exhaustive baseline's
/// [`crate::exhaustive::ExhaustiveResult::stats`] reuses the type with
/// **branch-and-bound nodes**. Do not merge statistics across searches
/// with different units.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PruneStats {
    /// Unique partitions enumerated (pruning level 1 already applied).
    pub enumerated: u64,
    /// Partitions whose evaluation ran to completion.
    pub completed: u64,
    /// Partitions whose evaluation was aborted by the `τ` bound.
    pub aborted: u64,
}

impl PruneStats {
    /// The paper's efficiency measure `E = completed / estimate`, where
    /// `estimate` is the number of unique partitions (Table 1 uses the
    /// asymptotic `V(W,B)`; pass whichever denominator is wanted).
    pub fn efficiency(&self, denominator: f64) -> f64 {
        if denominator <= 0.0 {
            return 0.0;
        }
        self.completed as f64 / denominator
    }

    /// Folds another (per-chunk) statistic into this one. Associative
    /// and commutative — parallel chunk merges cannot change totals —
    /// and it preserves the invariant
    /// `enumerated == completed + aborted`.
    pub fn merge(&mut self, other: PruneStats) {
        self.enumerated += other.enumerated;
        self.completed += other.completed;
        self.aborted += other.aborted;
    }
}

impl std::ops::AddAssign for PruneStats {
    fn add_assign(&mut self, other: PruneStats) {
        self.merge(other);
    }
}

/// Configuration of [`partition_evaluate`].
#[derive(Debug, Clone)]
pub struct EvaluateConfig {
    /// Smallest TAM count to consider (≥ 1).
    pub min_tams: u32,
    /// Largest TAM count to consider (inclusive).
    pub max_tams: u32,
    /// `Core_assign` tie-break switches.
    pub options: CoreAssignOptions,
    /// Whether to carry the `τ` bound into `Core_assign` (pruning
    /// level 2). Disabled only by the ablation benches.
    pub prune: bool,
    /// Wall-clock / node / cancellation budget for the whole scan.
    pub budget: SearchBudget,
    /// Thread count and chunk geometry of the parallel enumeration.
    pub parallel: ParallelConfig,
    /// Warm-start seed: an SOC testing time **known to be achievable**
    /// for this table (e.g. from an earlier request on the same SOC at a
    /// width ≤ this one). The scan's `τ` bound starts at `seed + 1`
    /// instead of `∞`, so evaluations that cannot match the seed abort
    /// immediately — same winner, strictly fewer completed evaluations.
    /// The seed is pruning-only: if it turns out unreachable here (the
    /// transfer across widths is heuristic), the scan falls back to a
    /// cold rescan rather than returning nothing.
    pub seed_tau: Option<u64>,
    /// Cross-scan [`MatrixMemo`]: when several scans run over the *same*
    /// [`TimeTable`] (a `Frontier` sweep across widths), canonical cost
    /// matrices built by one scan seed the per-worker memos of the next.
    /// Purely a work-saving device — a memo hit and a rebuild produce
    /// the same matrix, so results are unaffected.
    pub shared_memo: Option<Arc<MatrixMemo>>,
}

/// Cross-scan cache of canonical cost matrices keyed by effective-width
/// signature (see `ScanScratch`), shared by the widths of a `Frontier`
/// sweep over one [`TimeTable`].
///
/// Workers snapshot the map when their scratch is created and publish
/// newly built matrices back, so a width solved later starts with the
/// saturated-signature matrices of the widths solved earlier — the
/// paper's plateau makes wide widths share almost everything.
///
/// Never use one memo across *different* tables: signatures are only
/// meaningful relative to the table that produced them.
#[derive(Debug, Default)]
pub struct MatrixMemo {
    map: Mutex<HashMap<Vec<u32>, CostMatrix>>,
}

impl MatrixMemo {
    /// Creates an empty shared memo.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Number of cached canonical matrices.
    pub fn len(&self) -> usize {
        self.map.lock().map(|m| m.len()).unwrap_or(0)
    }

    /// Whether nothing has been published yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn snapshot(&self) -> HashMap<Vec<u32>, CostMatrix> {
        self.map.lock().map(|m| m.clone()).unwrap_or_default()
    }

    fn publish(&self, signature: &[u32], matrix: &CostMatrix) {
        if let Ok(mut map) = self.map.lock() {
            if map.len() < MEMO_CAP && !map.contains_key(signature) {
                map.insert(signature.to_vec(), matrix.clone());
            }
        }
    }
}

impl EvaluateConfig {
    /// Evaluates every TAM count from 1 to `max_tams` (problem
    /// *P_NPAW*).
    pub fn up_to_tams(max_tams: u32) -> Self {
        EvaluateConfig {
            min_tams: 1,
            max_tams,
            options: CoreAssignOptions::default(),
            prune: true,
            budget: SearchBudget::unlimited(),
            parallel: ParallelConfig::default(),
            seed_tau: None,
            shared_memo: None,
        }
    }

    /// Evaluates exactly `tams` TAMs (problem *P_PAW*).
    pub fn exact_tams(tams: u32) -> Self {
        EvaluateConfig {
            min_tams: tams,
            max_tams: tams,
            ..Self::up_to_tams(tams)
        }
    }
}

/// Result of [`partition_evaluate`]: the best partition found, the
/// heuristic assignment achieving it, and pruning statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalResult {
    /// The winning TAM set (widths in non-decreasing order).
    pub tams: TamSet,
    /// The heuristic core assignment on the winning TAM set.
    pub result: AssignResult,
    /// Pruning statistics over the whole run.
    pub stats: PruneStats,
    /// Whether the whole partition space was scanned (`false` when the
    /// [`SearchBudget`] stopped the scan early; the result is then the
    /// best over `stats.enumerated` partitions).
    pub complete: bool,
}

/// One entry of a ranked scan: a partition and the heuristic assignment
/// scored on it. Shared by [`partition_evaluate_top_k`] and the ranked
/// exhaustive baseline ([`crate::exhaustive::solve_top_k`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankedPartition {
    /// The partition's TAM set (widths in non-decreasing order).
    pub tams: TamSet,
    /// The assignment scored on it (heuristic here, exact in the
    /// exhaustive baseline).
    pub result: AssignResult,
}

impl RankedPartition {
    /// SOC testing time of this entry, in clock cycles.
    pub fn soc_time(&self) -> u64 {
        self.result.soc_time()
    }
}

/// Result of [`partition_evaluate_top_k`]: the `k` best partitions found,
/// best first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankedEvalResult {
    /// Up to `k` entries ordered by `(soc_time, partition index)` — the
    /// scan's deterministic tie-break. Fewer than `k` when the partition
    /// space itself is smaller.
    pub entries: Vec<RankedPartition>,
    /// Pruning statistics over the whole run (the bound is the running
    /// *k-th best* time, so completion counts grow with `k`).
    pub stats: PruneStats,
    /// Whether the whole partition space was scanned.
    pub complete: bool,
}

/// A scan candidate retained by the bounded best-K heap. Ordering (and
/// therefore ranking equality) is on `(time, index)` only: the global
/// partition index is unique per candidate, so the order is total and
/// the retained set is independent of evaluation interleaving.
#[derive(Debug, Clone)]
pub(crate) struct Candidate {
    pub(crate) time: u64,
    /// Global index of the partition in the canonical enumeration
    /// (TAM counts ascending, partitions in `Increment` order) — the
    /// deterministic tie-break for equal times.
    pub(crate) index: u64,
    pub(crate) tams: TamSet,
    pub(crate) result: AssignResult,
}

impl Candidate {
    pub(crate) fn key(&self) -> (u64, u64) {
        (self.time, self.index)
    }
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl Eq for Candidate {}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// Per-worker reusable state of the scan hot path: after warm-up, one
/// partition evaluation performs **zero heap allocations** unless it
/// improves the incumbent (materializing a result).
///
/// * `matrix` / `assign` are grow-once buffers rebuilt in place per
///   partition ([`CostMatrix::from_table_into`] / [`core_assign_into`]).
/// * `memo` caches cost matrices keyed by the partition's
///   **effective-width signature**
///   ([`TimeTable::effective_widths`]): parts past a core-set's Pareto
///   saturation width produce identical cost columns — the paper's own
///   plateau observation — so partitions like `4+40` and `4+64` (both
///   saturated) share one cached matrix instead of rebuilding it. A
///   memo hit copies the cached costs and installs the partition's
///   *actual* widths, so tie-breaks (which compare widths) behave
///   bit-identically to an uncached build. Signatures equal to the
///   actual widths are unique to their partition and skip the memo
///   entirely — caching them could only waste memory.
///
/// The memo is per worker: which partitions share a scratch depends on
/// thread count, but a memo hit and a rebuild produce the same matrix,
/// so results stay thread-count invariant.
struct ScanScratch {
    matrix: CostMatrix,
    assign: AssignScratch,
    signature: Vec<u32>,
    memo: HashMap<Vec<u32>, CostMatrix>,
    /// Chunk-local bounded best-K heap, drained at the end of every
    /// chunk (a heap persisting across chunks would make retention
    /// depend on which chunks share a worker, i.e. on thread count).
    ranking: Ranking<Candidate>,
    /// Cross-scan memo this worker snapshots from and publishes to
    /// (frontier sweeps); `None` for standalone scans.
    shared: Option<Arc<MatrixMemo>>,
}

/// Upper bound on memoized matrices per worker — a safety valve for
/// pathological tables, far above what the benchmark SOCs produce.
const MEMO_CAP: usize = 4096;

impl ScanScratch {
    fn new(k: usize, shared: Option<Arc<MatrixMemo>>) -> Self {
        ScanScratch {
            matrix: CostMatrix::scratch(),
            assign: AssignScratch::new(),
            signature: Vec::new(),
            // Start from everything sibling scans already built.
            memo: shared
                .as_deref()
                .map(MatrixMemo::snapshot)
                .unwrap_or_default(),
            ranking: Ranking::new(k),
            shared,
        }
    }

    /// Rebuilds `self.matrix` for `tams`, via the memo when the
    /// partition's effective-width signature collapses (some part is
    /// past saturation), directly from the table otherwise.
    fn rebuild_matrix(
        &mut self,
        table: &TimeTable,
        tams: &TamSet,
        effective: &[u32],
    ) -> Result<(), AssignError> {
        self.signature.clear();
        self.signature
            .extend(tams.widths().iter().map(|&w| effective[w as usize]));
        if self.signature.as_slice() == tams.widths() {
            // Canonical widths: no other partition shares this matrix.
            return CostMatrix::from_table_into(table, tams, &mut self.matrix);
        }
        if !self.memo.contains_key(self.signature.as_slice()) {
            if self.memo.len() >= MEMO_CAP {
                return CostMatrix::from_table_into(table, tams, &mut self.matrix);
            }
            let canonical =
                TamSet::new(self.signature.iter().copied()).expect("effective widths are positive");
            let built = CostMatrix::from_table(table, &canonical)?;
            if let Some(shared) = &self.shared {
                shared.publish(&self.signature, &built);
            }
            self.memo.insert(self.signature.clone(), built);
        }
        let cached = &self.memo[self.signature.as_slice()];
        self.matrix.copy_from(cached, tams.widths());
        Ok(())
    }
}

/// Runs `Partition_evaluate`: enumerates every unique partition of
/// `total_width` over the configured TAM-count range, scores each with
/// `Core_assign` under the running best-known bound `τ`, and returns the
/// best.
///
/// With `parallel.threads > 1` the chunked scan runs concurrently; the
/// returned [`EvalResult`] (winner *and* statistics) is bit-identical to
/// a single-threaded run. The budget is polled at generation boundaries,
/// and the first generation always runs, so even an already-expired
/// budget yields a valid (partial) result.
///
/// # Errors
///
/// * [`PartitionError::ZeroWidth`] if `total_width == 0`;
/// * [`PartitionError::EmptyTamRange`] for an empty TAM-count range;
/// * [`PartitionError::TableTooNarrow`] if `table` does not cover
///   `total_width`;
/// * [`PartitionError::NoFeasiblePartition`] if no TAM count in range
///   admits any partition (all exceed `total_width`).
///
/// # Example
///
/// ```
/// use tamopt_partition::{partition_evaluate, EvaluateConfig};
/// use tamopt_soc::benchmarks;
/// use tamopt_wrapper::TimeTable;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let soc = benchmarks::d695();
/// let table = TimeTable::new(&soc, 24)?;
/// let eval = partition_evaluate(&table, 24, &EvaluateConfig::up_to_tams(4))?;
/// assert_eq!(eval.tams.total_width(), 24);
/// assert!(eval.stats.completed >= 1);
/// assert!(eval.complete);
/// # Ok(())
/// # }
/// ```
pub fn partition_evaluate(
    table: &TimeTable,
    total_width: u32,
    config: &EvaluateConfig,
) -> Result<EvalResult, PartitionError> {
    let ranked = partition_evaluate_top_k(table, total_width, config, 1)?;
    let RankedPartition { tams, result } = ranked
        .entries
        .into_iter()
        .next()
        .expect("a k=1 scan with entries yields exactly one");
    Ok(EvalResult {
        tams,
        result,
        stats: ranked.stats,
        complete: ranked.complete,
    })
}

/// Runs `Partition_evaluate` keeping the `k` best partitions instead of
/// one: the typed `TopK` query kind of the service layer, and the
/// single-winner scan's actual implementation (`k = 1`).
///
/// The scan carries a bounded best-K heap per worker chunk (capped
/// [`Ranking`], ordered by `(soc_time, partition index)`), merged into a
/// global heap at generation barriers in chunk-index order. The pruning
/// bound generalizes from "best time so far" to "**k-th best** time so
/// far": a partition that cannot beat the current k-th best can never
/// enter the ranking, so `τ`-pruning (level 2) keeps working — it just
/// admits more completions as `k` grows. With `k = 1` the heap degenerates
/// to the single incumbent and the scan is bit-identical to
/// [`partition_evaluate`] — winner, [`PruneStats`] and all (that function
/// *is* this one).
///
/// A warm-start seed ([`EvaluateConfig::seed_tau`]) is honored only for
/// `k = 1`: the seed is a best-time bound, and opening the scan there
/// would wrongly abort the candidates of ranks `2..=k`, whose times are
/// worse than the best by definition.
///
/// # Errors
///
/// Same validation errors as [`partition_evaluate`].
///
/// # Panics
///
/// Panics if `k == 0` (a best-0 query is meaningless).
///
/// # Example
///
/// ```
/// use tamopt_partition::{partition_evaluate_top_k, EvaluateConfig};
/// use tamopt_soc::benchmarks;
/// use tamopt_wrapper::TimeTable;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let table = TimeTable::new(&benchmarks::d695(), 24)?;
/// let ranked = partition_evaluate_top_k(&table, 24, &EvaluateConfig::up_to_tams(4), 3)?;
/// assert_eq!(ranked.entries.len(), 3);
/// // Entries are ranked best-first.
/// assert!(ranked.entries[0].soc_time() <= ranked.entries[1].soc_time());
/// # Ok(())
/// # }
/// ```
pub fn partition_evaluate_top_k(
    table: &TimeTable,
    total_width: u32,
    config: &EvaluateConfig,
    k: usize,
) -> Result<RankedEvalResult, PartitionError> {
    assert!(k > 0, "top-k scan requires k >= 1");
    validate(table, total_width, config.min_tams, config.max_tams)?;

    /// Outcome of one index-ordered chunk of partitions.
    struct ChunkEval {
        stats: PruneStats,
        /// The chunk's best candidates, ascending, at most `k`.
        best: Vec<Candidate>,
    }

    // A warm-start seed opens the scan at `seed + 1`: any partition that
    // cannot *match* the seeded time aborts, while one achieving exactly
    // the seed (e.g. a repeated request) still completes and wins. Only
    // sound for k = 1 — see the doc above.
    let seed_tau = config.seed_tau.filter(|_| k == 1);
    let incumbent = match seed_tau {
        Some(seed) => SharedIncumbent::seeded(seed.saturating_add(1)),
        None => SharedIncumbent::unbounded(),
    };
    let mut stats = PruneStats::default();
    // The global ranking; its worst entry (once full) is the k-th best
    // time, published to workers through `incumbent` at barriers only.
    let mut global: Ranking<Candidate> = Ranking::new(k);

    // Width canonicalization for the per-worker matrix memo (see
    // `ScanScratch`): computed once, shared read-only by all workers.
    let effective = table.effective_widths();

    let items = (config.min_tams..=config.max_tams).flat_map(|b| Partitions::new(total_width, b));
    let status = search_chunks_with(
        items,
        &config.parallel,
        &config.budget,
        || ScanScratch::new(k, config.shared_memo.clone()),
        |scratch: &mut ScanScratch,
         base,
         chunk: Vec<Vec<u32>>|
         -> Result<ChunkEval, PartitionError> {
            // The shared k-th-best bound as of this chunk's generation,
            // tightened locally by the chunk's own heap as it fills.
            let snapshot = incumbent.get();
            scratch.ranking.clear();
            let mut out_stats = PruneStats::default();
            for (offset, widths) in chunk.into_iter().enumerate() {
                out_stats.enumerated += 1;
                let tams = TamSet::new(widths).expect("partition parts are positive");
                scratch.rebuild_matrix(table, &tams, &effective)?;
                // A candidate worse than the chunk's own k-th best can
                // never enter the global top-k either, so the local
                // heap's worst (once full) is a sound extra bound.
                let tau = match scratch.ranking.worst() {
                    Some(worst) if scratch.ranking.is_full() => snapshot.min(worst.time),
                    _ => snapshot,
                };
                let bound = if config.prune && tau != u64::MAX {
                    Some(tau)
                } else {
                    None
                };
                match core_assign_into(&scratch.matrix, bound, &config.options, &mut scratch.assign)
                {
                    Some(time) => {
                        out_stats.completed += 1;
                        let index = base + offset as u64;
                        let retain = match scratch.ranking.worst() {
                            Some(worst) if scratch.ranking.is_full() => (time, index) < worst.key(),
                            _ => true,
                        };
                        if retain {
                            // Materializing the result is the hot path's
                            // only allocation, paid just for candidates
                            // entering the chunk's ranking.
                            scratch.ranking.offer(Candidate {
                                time,
                                index,
                                tams,
                                result: scratch.assign.result(&scratch.matrix),
                            });
                        }
                    }
                    None => {
                        out_stats.aborted += 1;
                    }
                }
            }
            Ok(ChunkEval {
                stats: out_stats,
                best: scratch.ranking.drain_sorted(),
            })
        },
        |chunk: ChunkEval| {
            stats.merge(chunk.stats);
            // Chunks merge in index order and the candidate order is
            // total on (time, index), so the global ranking ends up with
            // the k lowest-(time, index) partitions — for k = 1 exactly
            // the sequential single-incumbent winner.
            for candidate in chunk.best {
                global.offer(candidate);
            }
            if global.is_full() {
                if let Some(worst) = global.worst() {
                    incumbent.tighten(worst.time);
                }
            }
            Ok(())
        },
    )?;

    debug_assert_eq!(stats.enumerated, stats.completed + stats.aborted);
    if global.is_empty() {
        if seed_tau.is_some() {
            // The seed was unreachable at this width / TAM range (the
            // warm-start transfer is heuristic, not a guarantee): rescan
            // cold so seeding can never change *whether* a result
            // exists. The fallback is deterministic — it depends only on
            // the (deterministic) seeded scan finding nothing.
            let cold = partition_evaluate_top_k(
                table,
                total_width,
                &EvaluateConfig {
                    seed_tau: None,
                    ..config.clone()
                },
                k,
            )?;
            let mut merged = stats;
            merged.merge(cold.stats);
            return Ok(RankedEvalResult {
                stats: merged,
                ..cold
            });
        }
        return Err(PartitionError::NoFeasiblePartition { total_width });
    }
    Ok(RankedEvalResult {
        entries: global
            .into_sorted_vec()
            .into_iter()
            .map(|c| RankedPartition {
                tams: c.tams,
                result: c.result,
            })
            .collect(),
        stats,
        complete: status.is_complete(),
    })
}

pub(crate) fn validate(
    table: &TimeTable,
    total_width: u32,
    min_tams: u32,
    max_tams: u32,
) -> Result<(), PartitionError> {
    if total_width == 0 {
        return Err(PartitionError::ZeroWidth);
    }
    if min_tams == 0 || min_tams > max_tams {
        return Err(PartitionError::EmptyTamRange { min_tams, max_tams });
    }
    if table.max_width() < total_width {
        return Err(PartitionError::TableTooNarrow {
            required: total_width,
            max_width: table.max_width(),
        });
    }
    if min_tams > total_width {
        return Err(PartitionError::NoFeasiblePartition { total_width });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count;
    use std::time::Duration;
    use tamopt_soc::benchmarks;

    fn d695_table(width: u32) -> TimeTable {
        TimeTable::new(&benchmarks::d695(), width).unwrap()
    }

    #[test]
    fn finds_a_partition_for_fixed_b() {
        let table = d695_table(32);
        let eval = partition_evaluate(&table, 32, &EvaluateConfig::exact_tams(2)).unwrap();
        assert_eq!(eval.tams.len(), 2);
        assert_eq!(eval.tams.total_width(), 32);
        assert!(eval.complete);
        assert_eq!(
            eval.stats.enumerated,
            count::unique_partitions(32, 2),
            "every unique partition is enumerated"
        );
        assert_eq!(
            eval.stats.completed + eval.stats.aborted,
            eval.stats.enumerated
        );
    }

    #[test]
    fn pruning_skips_most_partitions() {
        let table = d695_table(48);
        let eval = partition_evaluate(&table, 48, &EvaluateConfig::up_to_tams(4)).unwrap();
        assert!(
            eval.stats.aborted > eval.stats.completed,
            "τ-pruning should dominate: {:?}",
            eval.stats
        );
    }

    #[test]
    fn pruning_does_not_change_the_result() {
        let table = d695_table(40);
        let pruned = partition_evaluate(&table, 40, &EvaluateConfig::up_to_tams(3)).unwrap();
        let unpruned = partition_evaluate(
            &table,
            40,
            &EvaluateConfig {
                prune: false,
                ..EvaluateConfig::up_to_tams(3)
            },
        )
        .unwrap();
        assert_eq!(pruned.result.soc_time(), unpruned.result.soc_time());
        assert_eq!(unpruned.stats.aborted, 0);
        assert_eq!(unpruned.stats.completed, unpruned.stats.enumerated);
    }

    #[test]
    fn more_tams_never_hurt_the_heuristic_bound() {
        let table = d695_table(32);
        let b2 = partition_evaluate(&table, 32, &EvaluateConfig::up_to_tams(2)).unwrap();
        let b4 = partition_evaluate(&table, 32, &EvaluateConfig::up_to_tams(4)).unwrap();
        assert!(b4.result.soc_time() <= b2.result.soc_time());
    }

    #[test]
    fn single_tam_is_the_serial_schedule() {
        let table = d695_table(16);
        let eval = partition_evaluate(&table, 16, &EvaluateConfig::exact_tams(1)).unwrap();
        let serial: u64 = (0..table.num_cores()).map(|c| table.time(c, 16)).sum();
        assert_eq!(eval.result.soc_time(), serial);
        assert_eq!(eval.stats.enumerated, 1);
    }

    #[test]
    fn validation_errors() {
        let table = d695_table(16);
        assert_eq!(
            partition_evaluate(&table, 0, &EvaluateConfig::up_to_tams(2)).unwrap_err(),
            PartitionError::ZeroWidth
        );
        assert_eq!(
            partition_evaluate(&table, 16, &EvaluateConfig::exact_tams(0)).unwrap_err(),
            PartitionError::EmptyTamRange {
                min_tams: 0,
                max_tams: 0
            }
        );
        assert_eq!(
            partition_evaluate(
                &table,
                16,
                &EvaluateConfig {
                    min_tams: 3,
                    max_tams: 2,
                    ..EvaluateConfig::up_to_tams(2)
                }
            )
            .unwrap_err(),
            PartitionError::EmptyTamRange {
                min_tams: 3,
                max_tams: 2
            }
        );
        assert_eq!(
            partition_evaluate(&table, 32, &EvaluateConfig::up_to_tams(2)).unwrap_err(),
            PartitionError::TableTooNarrow {
                required: 32,
                max_width: 16
            }
        );
        assert_eq!(
            partition_evaluate(&table, 4, &EvaluateConfig::exact_tams(9)).unwrap_err(),
            PartitionError::NoFeasiblePartition { total_width: 4 }
        );
    }

    #[test]
    fn stats_efficiency() {
        let stats = PruneStats {
            enumerated: 100,
            completed: 2,
            aborted: 98,
        };
        assert!((stats.efficiency(100.0) - 0.02).abs() < 1e-12);
        assert_eq!(stats.efficiency(0.0), 0.0);
    }

    #[test]
    fn stats_merge_is_associative() {
        let chunks = [
            PruneStats {
                enumerated: 10,
                completed: 3,
                aborted: 7,
            },
            PruneStats {
                enumerated: 5,
                completed: 5,
                aborted: 0,
            },
            PruneStats {
                enumerated: 8,
                completed: 1,
                aborted: 7,
            },
        ];
        // (a + b) + c == a + (b + c) == sum in any order.
        let mut left = chunks[0];
        left.merge(chunks[1]);
        left.merge(chunks[2]);
        let mut right = chunks[1];
        right.merge(chunks[2]);
        let mut a = chunks[0];
        a.merge(right);
        assert_eq!(left, a);
        let mut reversed = chunks[2];
        reversed += chunks[1];
        reversed += chunks[0];
        assert_eq!(left, reversed);
        assert_eq!(left.enumerated, left.completed + left.aborted);
    }

    #[test]
    fn result_partition_is_canonical() {
        let table = d695_table(24);
        let eval = partition_evaluate(&table, 24, &EvaluateConfig::up_to_tams(5)).unwrap();
        let w = eval.tams.widths();
        assert!(w.windows(2).all(|p| p[0] <= p[1]));
    }

    #[test]
    fn expired_budget_returns_partial_but_valid_result() {
        let table = d695_table(48);
        let config = EvaluateConfig {
            budget: SearchBudget::time_limited(Duration::ZERO),
            ..EvaluateConfig::up_to_tams(6)
        };
        let eval = partition_evaluate(&table, 48, &config).unwrap();
        assert!(!eval.complete, "zero budget cannot scan everything");
        // Exactly the first generation (one chunk) ran.
        assert_eq!(eval.stats.enumerated, config.parallel.chunk_size as u64);
        assert_eq!(
            eval.stats.enumerated,
            eval.stats.completed + eval.stats.aborted
        );
        assert_eq!(eval.tams.total_width(), 48, "partial result is valid");
    }

    #[test]
    fn seeded_scan_keeps_the_winner_with_strictly_fewer_completions() {
        let table = d695_table(32);
        let cold = partition_evaluate(&table, 32, &EvaluateConfig::up_to_tams(4)).unwrap();
        // Seeding with the cold run's own achieved time models a
        // warm-start cache hit (same SOC seen before).
        let seeded = partition_evaluate(
            &table,
            32,
            &EvaluateConfig {
                seed_tau: Some(cold.result.soc_time()),
                ..EvaluateConfig::up_to_tams(4)
            },
        )
        .unwrap();
        assert_eq!(
            seeded.tams, cold.tams,
            "warm start must not change the winner"
        );
        assert_eq!(seeded.result, cold.result);
        assert!(seeded.complete);
        assert_eq!(seeded.stats.enumerated, cold.stats.enumerated);
        assert!(
            seeded.stats.completed < cold.stats.completed,
            "the seed must abort evaluations the cold scan completed: {:?} vs {:?}",
            seeded.stats,
            cold.stats
        );
    }

    #[test]
    fn seeded_scan_is_thread_count_invariant() {
        let table = d695_table(32);
        let cold = partition_evaluate(&table, 32, &EvaluateConfig::up_to_tams(4)).unwrap();
        let run = |threads: usize| {
            partition_evaluate(
                &table,
                32,
                &EvaluateConfig {
                    seed_tau: Some(cold.result.soc_time()),
                    parallel: ParallelConfig::with_threads(threads),
                    ..EvaluateConfig::up_to_tams(4)
                },
            )
            .unwrap()
        };
        let reference = run(1);
        for threads in [2, 8] {
            assert_eq!(run(threads), reference, "threads {threads}");
        }
    }

    #[test]
    fn unreachable_seed_falls_back_to_a_cold_rescan() {
        let table = d695_table(24);
        let cold = partition_evaluate(&table, 24, &EvaluateConfig::up_to_tams(3)).unwrap();
        let seeded = partition_evaluate(
            &table,
            24,
            &EvaluateConfig {
                seed_tau: Some(0), // no architecture tests in 0 cycles
                ..EvaluateConfig::up_to_tams(3)
            },
        )
        .unwrap();
        assert_eq!(seeded.tams, cold.tams);
        assert_eq!(seeded.result, cold.result);
        assert!(seeded.complete);
        // The wasted seeded pass is accounted for, not hidden.
        assert_eq!(seeded.stats.enumerated, 2 * cold.stats.enumerated);
        assert_eq!(
            seeded.stats.enumerated,
            seeded.stats.completed + seeded.stats.aborted
        );
    }

    #[test]
    fn rebuild_matrix_equals_a_direct_build_for_every_partition() {
        // The memo must be invisible: whether a matrix comes from the
        // effective-width cache or straight from the table, it must be
        // bit-identical — including the *actual* (uncollapsed) widths
        // the heuristic's tie-breaks compare.
        let table = d695_table(64);
        let effective = table.effective_widths();
        let mut scratch = ScanScratch::new(1, None);
        let mut memo_hits = 0u32;
        for b in 1..=3u32 {
            for widths in Partitions::new(64, b) {
                let tams = TamSet::new(widths).unwrap();
                let sig: Vec<u32> = tams
                    .widths()
                    .iter()
                    .map(|&w| effective[w as usize])
                    .collect();
                if sig != tams.widths() {
                    memo_hits += 1;
                }
                scratch.rebuild_matrix(&table, &tams, &effective).unwrap();
                let direct = CostMatrix::from_table(&table, &tams).unwrap();
                assert_eq!(scratch.matrix, direct, "widths {:?}", tams.widths());
            }
        }
        assert!(memo_hits > 0, "W=64 must exercise the saturated-part memo");
    }

    #[test]
    fn memoized_scan_matches_a_naive_unpruned_scan() {
        // End-to-end cross-check of the allocation-free hot path against
        // the straightforward allocate-per-partition loop it replaced.
        use tamopt_assign::{core_assign, CoreAssignOptions};
        let table = d695_table(64);
        let config = EvaluateConfig {
            prune: false,
            ..EvaluateConfig::up_to_tams(3)
        };
        let eval = partition_evaluate(&table, 64, &config).unwrap();
        let mut best: Option<(u64, TamSet, AssignResult)> = None;
        for b in 1..=3u32 {
            for widths in Partitions::new(64, b) {
                let tams = TamSet::new(widths).unwrap();
                let costs = CostMatrix::from_table(&table, &tams).unwrap();
                let result = core_assign(&costs, None, &CoreAssignOptions::default())
                    .into_result()
                    .expect("unbounded");
                if best.as_ref().is_none_or(|(t, _, _)| result.soc_time() < *t) {
                    best = Some((result.soc_time(), tams, result));
                }
            }
        }
        let (_, tams, result) = best.unwrap();
        assert_eq!(eval.tams, tams);
        assert_eq!(eval.result, result);
    }

    #[test]
    fn top_k_entries_are_ranked_and_distinct() {
        let table = d695_table(32);
        let ranked =
            partition_evaluate_top_k(&table, 32, &EvaluateConfig::up_to_tams(4), 5).unwrap();
        assert_eq!(ranked.entries.len(), 5);
        assert!(ranked.complete);
        assert!(ranked
            .entries
            .windows(2)
            .all(|e| e[0].soc_time() <= e[1].soc_time()));
        // Entries are distinct partitions, not copies of the winner.
        for pair in ranked.entries.windows(2) {
            assert_ne!(pair[0].tams, pair[1].tams);
        }
        assert_eq!(
            ranked.stats.enumerated,
            ranked.stats.completed + ranked.stats.aborted
        );
    }

    #[test]
    fn top_1_is_the_single_winner_path_bit_for_bit() {
        let table = d695_table(48);
        let config = EvaluateConfig::up_to_tams(5);
        let single = partition_evaluate(&table, 48, &config).unwrap();
        let ranked = partition_evaluate_top_k(&table, 48, &config, 1).unwrap();
        assert_eq!(ranked.entries.len(), 1);
        assert_eq!(ranked.entries[0].tams, single.tams);
        assert_eq!(ranked.entries[0].result, single.result);
        assert_eq!(ranked.stats, single.stats, "PruneStats must not drift");
        assert_eq!(ranked.complete, single.complete);
    }

    #[test]
    fn top_k_rank_1_matches_the_single_winner() {
        // Growing k admits more completions (the bound is the k-th best)
        // but must never change who wins.
        let table = d695_table(32);
        let config = EvaluateConfig::up_to_tams(4);
        let single = partition_evaluate(&table, 32, &config).unwrap();
        for k in [2usize, 4, 8] {
            let ranked = partition_evaluate_top_k(&table, 32, &config, k).unwrap();
            assert_eq!(ranked.entries[0].tams, single.tams, "k={k}");
            assert_eq!(ranked.entries[0].result, single.result, "k={k}");
            assert!(
                ranked.stats.completed >= single.stats.completed,
                "k={k}: a looser bound cannot complete fewer evaluations"
            );
        }
    }

    #[test]
    fn top_k_is_thread_count_invariant() {
        let table = d695_table(32);
        let run = |threads: usize, k: usize| {
            partition_evaluate_top_k(
                &table,
                32,
                &EvaluateConfig {
                    parallel: ParallelConfig::with_threads(threads),
                    ..EvaluateConfig::up_to_tams(4)
                },
                k,
            )
            .unwrap()
        };
        for k in [1usize, 3, 4] {
            let reference = run(1, k);
            for threads in [2, 8] {
                assert_eq!(run(threads, k), reference, "threads {threads}, k {k}");
            }
        }
    }

    #[test]
    fn top_k_larger_than_the_space_returns_everything() {
        // W=6, B=2 has exactly 3 unique partitions: 1+5, 2+4, 3+3.
        let table = d695_table(6);
        let ranked =
            partition_evaluate_top_k(&table, 6, &EvaluateConfig::exact_tams(2), 10).unwrap();
        assert_eq!(ranked.entries.len(), 3);
        assert_eq!(ranked.stats.enumerated, 3);
    }

    #[test]
    fn top_k_matches_a_full_unpruned_ranking() {
        // Cross-check the heap + k-th-best pruning against the obvious
        // oracle: score every partition unpruned, sort by
        // (time, enumeration index), take k.
        use tamopt_assign::core_assign;
        let table = d695_table(24);
        let k = 6usize;
        let ranked =
            partition_evaluate_top_k(&table, 24, &EvaluateConfig::up_to_tams(3), k).unwrap();
        let mut oracle: Vec<(u64, u64, TamSet)> = Vec::new();
        let mut index = 0u64;
        for b in 1..=3u32 {
            for widths in Partitions::new(24, b) {
                let tams = TamSet::new(widths).unwrap();
                let costs = CostMatrix::from_table(&table, &tams).unwrap();
                let result = core_assign(&costs, None, &CoreAssignOptions::default())
                    .into_result()
                    .expect("unbounded");
                oracle.push((result.soc_time(), index, tams));
                index += 1;
            }
        }
        oracle.sort_by_key(|(time, index, _)| (*time, *index));
        assert_eq!(ranked.entries.len(), k);
        for (entry, (time, _, tams)) in ranked.entries.iter().zip(&oracle) {
            assert_eq!(entry.soc_time(), *time);
            assert_eq!(&entry.tams, tams);
        }
    }

    #[test]
    fn top_k_ignores_the_warm_start_seed_for_k_above_1() {
        // A best-time seed would wrongly abort ranks 2..=k; the ranked
        // scan must drop it and still return the full cold ranking.
        let table = d695_table(32);
        let config = EvaluateConfig::up_to_tams(4);
        let cold = partition_evaluate_top_k(&table, 32, &config, 3).unwrap();
        let best = cold.entries[0].soc_time();
        let seeded = partition_evaluate_top_k(
            &table,
            32,
            &EvaluateConfig {
                seed_tau: Some(best),
                ..config
            },
            3,
        )
        .unwrap();
        assert_eq!(seeded, cold, "seed must be inert for k > 1");
    }

    #[test]
    fn shared_memo_changes_nothing_but_gets_populated() {
        let table = d695_table(64);
        let cold = partition_evaluate(&table, 64, &EvaluateConfig::up_to_tams(3)).unwrap();
        let memo = MatrixMemo::new();
        let with_memo = |memo: &Arc<MatrixMemo>| {
            partition_evaluate(
                &table,
                64,
                &EvaluateConfig {
                    shared_memo: Some(memo.clone()),
                    ..EvaluateConfig::up_to_tams(3)
                },
            )
            .unwrap()
        };
        let first = with_memo(&memo);
        assert_eq!(first, cold, "publishing to the memo must be invisible");
        assert!(!memo.is_empty(), "W=64 must publish saturated signatures");
        let populated = memo.len();
        // A second scan over the same table starts warm and must still
        // be bit-identical.
        let second = with_memo(&memo);
        assert_eq!(second, cold, "snapshotting the memo must be invisible");
        assert_eq!(memo.len(), populated, "nothing new to publish");
    }

    #[test]
    fn node_budget_truncates_deterministically() {
        let table = d695_table(48);
        let run = |threads: usize| {
            partition_evaluate(
                &table,
                48,
                &EvaluateConfig {
                    budget: SearchBudget::node_limited(100),
                    parallel: ParallelConfig::with_threads(threads),
                    ..EvaluateConfig::up_to_tams(6)
                },
            )
            .unwrap()
        };
        let reference = run(1);
        assert!(!reference.complete);
        // Whole generations: 32 + 64 + 128 dispatched items.
        assert_eq!(reference.stats.enumerated, 224);
        assert_eq!(run(4), reference, "node-budget truncation is deterministic");
    }
}
