//! The `Partition_evaluate` heuristic (Figure 3 of the paper).
//!
//! For every TAM count `B` in the configured range and every unique
//! partition of the total width `W` into `B` parts, the partition is
//! scored with the `Core_assign` heuristic, carrying the best-known SOC
//! testing time `τ` across evaluations so that most partitions abort
//! early (pruning level 2). The result is the paper's *intermediate*
//! solution to *P_PAW* / *P_NPAW*; the final exact optimization step
//! lives in [`crate::pipeline`].
//!
//! The enumeration runs on the deterministic chunked executor of
//! [`tamopt_engine`]: partitions are split into index-ordered chunks,
//! chunks of one generation are scored concurrently against a shared
//! [`SharedIncumbent`] `τ`-bound, and results reduce in chunk order —
//! the winner is the lowest-indexed partition achieving the best time,
//! so `threads = N` is bit-identical to `threads = 1` (statistics
//! included). A [`SearchBudget`] bounds the whole scan; a truncated run
//! still returns the best partition of the generations that finished.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use tamopt_assign::{
    core_assign_into, AssignError, AssignResult, AssignScratch, CoreAssignOptions, CostMatrix,
    TamSet,
};
use tamopt_engine::{search_chunks_with, ParallelConfig, SearchBudget, SharedIncumbent};
use tamopt_wrapper::TimeTable;

use crate::enumerate::Partitions;
use crate::PartitionError;

/// Pruning statistics of one `Partition_evaluate` run — the quantities
/// behind the paper's Table 1.
///
/// The counting unit is defined by the producing search: here and in
/// [`crate::pipeline`] it is **partitions**; the exhaustive baseline's
/// [`crate::exhaustive::ExhaustiveResult::stats`] reuses the type with
/// **branch-and-bound nodes**. Do not merge statistics across searches
/// with different units.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PruneStats {
    /// Unique partitions enumerated (pruning level 1 already applied).
    pub enumerated: u64,
    /// Partitions whose evaluation ran to completion.
    pub completed: u64,
    /// Partitions whose evaluation was aborted by the `τ` bound.
    pub aborted: u64,
}

impl PruneStats {
    /// The paper's efficiency measure `E = completed / estimate`, where
    /// `estimate` is the number of unique partitions (Table 1 uses the
    /// asymptotic `V(W,B)`; pass whichever denominator is wanted).
    pub fn efficiency(&self, denominator: f64) -> f64 {
        if denominator <= 0.0 {
            return 0.0;
        }
        self.completed as f64 / denominator
    }

    /// Folds another (per-chunk) statistic into this one. Associative
    /// and commutative — parallel chunk merges cannot change totals —
    /// and it preserves the invariant
    /// `enumerated == completed + aborted`.
    pub fn merge(&mut self, other: PruneStats) {
        self.enumerated += other.enumerated;
        self.completed += other.completed;
        self.aborted += other.aborted;
    }
}

impl std::ops::AddAssign for PruneStats {
    fn add_assign(&mut self, other: PruneStats) {
        self.merge(other);
    }
}

/// Configuration of [`partition_evaluate`].
#[derive(Debug, Clone)]
pub struct EvaluateConfig {
    /// Smallest TAM count to consider (≥ 1).
    pub min_tams: u32,
    /// Largest TAM count to consider (inclusive).
    pub max_tams: u32,
    /// `Core_assign` tie-break switches.
    pub options: CoreAssignOptions,
    /// Whether to carry the `τ` bound into `Core_assign` (pruning
    /// level 2). Disabled only by the ablation benches.
    pub prune: bool,
    /// Wall-clock / node / cancellation budget for the whole scan.
    pub budget: SearchBudget,
    /// Thread count and chunk geometry of the parallel enumeration.
    pub parallel: ParallelConfig,
    /// Warm-start seed: an SOC testing time **known to be achievable**
    /// for this table (e.g. from an earlier request on the same SOC at a
    /// width ≤ this one). The scan's `τ` bound starts at `seed + 1`
    /// instead of `∞`, so evaluations that cannot match the seed abort
    /// immediately — same winner, strictly fewer completed evaluations.
    /// The seed is pruning-only: if it turns out unreachable here (the
    /// transfer across widths is heuristic), the scan falls back to a
    /// cold rescan rather than returning nothing.
    pub seed_tau: Option<u64>,
}

impl EvaluateConfig {
    /// Evaluates every TAM count from 1 to `max_tams` (problem
    /// *P_NPAW*).
    pub fn up_to_tams(max_tams: u32) -> Self {
        EvaluateConfig {
            min_tams: 1,
            max_tams,
            options: CoreAssignOptions::default(),
            prune: true,
            budget: SearchBudget::unlimited(),
            parallel: ParallelConfig::default(),
            seed_tau: None,
        }
    }

    /// Evaluates exactly `tams` TAMs (problem *P_PAW*).
    pub fn exact_tams(tams: u32) -> Self {
        EvaluateConfig {
            min_tams: tams,
            max_tams: tams,
            ..Self::up_to_tams(tams)
        }
    }
}

/// Result of [`partition_evaluate`]: the best partition found, the
/// heuristic assignment achieving it, and pruning statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalResult {
    /// The winning TAM set (widths in non-decreasing order).
    pub tams: TamSet,
    /// The heuristic core assignment on the winning TAM set.
    pub result: AssignResult,
    /// Pruning statistics over the whole run.
    pub stats: PruneStats,
    /// Whether the whole partition space was scanned (`false` when the
    /// [`SearchBudget`] stopped the scan early; the result is then the
    /// best over `stats.enumerated` partitions).
    pub complete: bool,
}

/// Per-worker reusable state of the scan hot path: after warm-up, one
/// partition evaluation performs **zero heap allocations** unless it
/// improves the incumbent (materializing a result).
///
/// * `matrix` / `assign` are grow-once buffers rebuilt in place per
///   partition ([`CostMatrix::from_table_into`] / [`core_assign_into`]).
/// * `memo` caches cost matrices keyed by the partition's
///   **effective-width signature**
///   ([`TimeTable::effective_widths`]): parts past a core-set's Pareto
///   saturation width produce identical cost columns — the paper's own
///   plateau observation — so partitions like `4+40` and `4+64` (both
///   saturated) share one cached matrix instead of rebuilding it. A
///   memo hit copies the cached costs and installs the partition's
///   *actual* widths, so tie-breaks (which compare widths) behave
///   bit-identically to an uncached build. Signatures equal to the
///   actual widths are unique to their partition and skip the memo
///   entirely — caching them could only waste memory.
///
/// The memo is per worker: which partitions share a scratch depends on
/// thread count, but a memo hit and a rebuild produce the same matrix,
/// so results stay thread-count invariant.
struct ScanScratch {
    matrix: CostMatrix,
    assign: AssignScratch,
    signature: Vec<u32>,
    memo: HashMap<Vec<u32>, CostMatrix>,
}

/// Upper bound on memoized matrices per worker — a safety valve for
/// pathological tables, far above what the benchmark SOCs produce.
const MEMO_CAP: usize = 4096;

impl ScanScratch {
    fn new() -> Self {
        ScanScratch {
            matrix: CostMatrix::scratch(),
            assign: AssignScratch::new(),
            signature: Vec::new(),
            memo: HashMap::new(),
        }
    }

    /// Rebuilds `self.matrix` for `tams`, via the memo when the
    /// partition's effective-width signature collapses (some part is
    /// past saturation), directly from the table otherwise.
    fn rebuild_matrix(
        &mut self,
        table: &TimeTable,
        tams: &TamSet,
        effective: &[u32],
    ) -> Result<(), AssignError> {
        self.signature.clear();
        self.signature
            .extend(tams.widths().iter().map(|&w| effective[w as usize]));
        if self.signature.as_slice() == tams.widths() {
            // Canonical widths: no other partition shares this matrix.
            return CostMatrix::from_table_into(table, tams, &mut self.matrix);
        }
        if !self.memo.contains_key(self.signature.as_slice()) {
            if self.memo.len() >= MEMO_CAP {
                return CostMatrix::from_table_into(table, tams, &mut self.matrix);
            }
            let canonical =
                TamSet::new(self.signature.iter().copied()).expect("effective widths are positive");
            let built = CostMatrix::from_table(table, &canonical)?;
            self.memo.insert(self.signature.clone(), built);
        }
        let cached = &self.memo[self.signature.as_slice()];
        self.matrix.copy_from(cached, tams.widths());
        Ok(())
    }
}

/// Runs `Partition_evaluate`: enumerates every unique partition of
/// `total_width` over the configured TAM-count range, scores each with
/// `Core_assign` under the running best-known bound `τ`, and returns the
/// best.
///
/// With `parallel.threads > 1` the chunked scan runs concurrently; the
/// returned [`EvalResult`] (winner *and* statistics) is bit-identical to
/// a single-threaded run. The budget is polled at generation boundaries,
/// and the first generation always runs, so even an already-expired
/// budget yields a valid (partial) result.
///
/// # Errors
///
/// * [`PartitionError::ZeroWidth`] if `total_width == 0`;
/// * [`PartitionError::EmptyTamRange`] for an empty TAM-count range;
/// * [`PartitionError::TableTooNarrow`] if `table` does not cover
///   `total_width`;
/// * [`PartitionError::NoFeasiblePartition`] if no TAM count in range
///   admits any partition (all exceed `total_width`).
///
/// # Example
///
/// ```
/// use tamopt_partition::{partition_evaluate, EvaluateConfig};
/// use tamopt_soc::benchmarks;
/// use tamopt_wrapper::TimeTable;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let soc = benchmarks::d695();
/// let table = TimeTable::new(&soc, 24)?;
/// let eval = partition_evaluate(&table, 24, &EvaluateConfig::up_to_tams(4))?;
/// assert_eq!(eval.tams.total_width(), 24);
/// assert!(eval.stats.completed >= 1);
/// assert!(eval.complete);
/// # Ok(())
/// # }
/// ```
pub fn partition_evaluate(
    table: &TimeTable,
    total_width: u32,
    config: &EvaluateConfig,
) -> Result<EvalResult, PartitionError> {
    validate(table, total_width, config.min_tams, config.max_tams)?;

    /// Outcome of one index-ordered chunk of partitions.
    struct ChunkEval {
        stats: PruneStats,
        /// Best completed partition of the chunk: `(time, tams, result)`.
        best: Option<(u64, TamSet, AssignResult)>,
    }

    // A warm-start seed opens the scan at `seed + 1`: any partition that
    // cannot *match* the seeded time aborts, while one achieving exactly
    // the seed (e.g. a repeated request) still completes and wins.
    let incumbent = match config.seed_tau {
        Some(seed) => SharedIncumbent::seeded(seed.saturating_add(1)),
        None => SharedIncumbent::unbounded(),
    };
    let mut stats = PruneStats::default();
    let mut best: Option<(u64, TamSet, AssignResult)> = None;

    // Width canonicalization for the per-worker matrix memo (see
    // `ScanScratch`): computed once, shared read-only by all workers.
    let effective = table.effective_widths();

    let items = (config.min_tams..=config.max_tams).flat_map(|b| Partitions::new(total_width, b));
    let status = search_chunks_with(
        items,
        &config.parallel,
        &config.budget,
        ScanScratch::new,
        |scratch: &mut ScanScratch,
         _base,
         chunk: Vec<Vec<u32>>|
         -> Result<ChunkEval, PartitionError> {
            // The shared bound as of this chunk's generation, improved
            // locally as the chunk's own partitions complete.
            let mut tau = incumbent.get();
            let mut out = ChunkEval {
                stats: PruneStats::default(),
                best: None,
            };
            for widths in chunk {
                out.stats.enumerated += 1;
                let tams = TamSet::new(widths).expect("partition parts are positive");
                scratch.rebuild_matrix(table, &tams, &effective)?;
                let bound = if config.prune && tau != u64::MAX {
                    Some(tau)
                } else {
                    None
                };
                match core_assign_into(&scratch.matrix, bound, &config.options, &mut scratch.assign)
                {
                    Some(time) => {
                        out.stats.completed += 1;
                        if time < tau {
                            tau = time;
                            // Materializing the result is the hot path's
                            // only allocation, paid just for new chunk
                            // incumbents.
                            out.best = Some((tau, tams, scratch.assign.result(&scratch.matrix)));
                        }
                    }
                    None => {
                        out.stats.aborted += 1;
                    }
                }
            }
            Ok(out)
        },
        |chunk: ChunkEval| {
            stats.merge(chunk.stats);
            if let Some((time, tams, result)) = chunk.best {
                incumbent.tighten(time);
                // Chunks merge in index order and improvement is strict,
                // so the winner is the lowest-indexed partition with the
                // best time — exactly the sequential winner.
                if best.as_ref().is_none_or(|(t, _, _)| time < *t) {
                    best = Some((time, tams, result));
                }
            }
            Ok(())
        },
    )?;

    debug_assert_eq!(stats.enumerated, stats.completed + stats.aborted);
    let Some((_, tams, result)) = best else {
        if config.seed_tau.is_some() {
            // The seed was unreachable at this width / TAM range (the
            // warm-start transfer is heuristic, not a guarantee): rescan
            // cold so seeding can never change *whether* a result
            // exists. The fallback is deterministic — it depends only on
            // the (deterministic) seeded scan finding nothing.
            let cold = partition_evaluate(
                table,
                total_width,
                &EvaluateConfig {
                    seed_tau: None,
                    ..config.clone()
                },
            )?;
            let mut merged = stats;
            merged.merge(cold.stats);
            return Ok(EvalResult {
                stats: merged,
                ..cold
            });
        }
        return Err(PartitionError::NoFeasiblePartition { total_width });
    };
    Ok(EvalResult {
        tams,
        result,
        stats,
        complete: status.is_complete(),
    })
}

pub(crate) fn validate(
    table: &TimeTable,
    total_width: u32,
    min_tams: u32,
    max_tams: u32,
) -> Result<(), PartitionError> {
    if total_width == 0 {
        return Err(PartitionError::ZeroWidth);
    }
    if min_tams == 0 || min_tams > max_tams {
        return Err(PartitionError::EmptyTamRange { min_tams, max_tams });
    }
    if table.max_width() < total_width {
        return Err(PartitionError::TableTooNarrow {
            required: total_width,
            max_width: table.max_width(),
        });
    }
    if min_tams > total_width {
        return Err(PartitionError::NoFeasiblePartition { total_width });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count;
    use std::time::Duration;
    use tamopt_soc::benchmarks;

    fn d695_table(width: u32) -> TimeTable {
        TimeTable::new(&benchmarks::d695(), width).unwrap()
    }

    #[test]
    fn finds_a_partition_for_fixed_b() {
        let table = d695_table(32);
        let eval = partition_evaluate(&table, 32, &EvaluateConfig::exact_tams(2)).unwrap();
        assert_eq!(eval.tams.len(), 2);
        assert_eq!(eval.tams.total_width(), 32);
        assert!(eval.complete);
        assert_eq!(
            eval.stats.enumerated,
            count::unique_partitions(32, 2),
            "every unique partition is enumerated"
        );
        assert_eq!(
            eval.stats.completed + eval.stats.aborted,
            eval.stats.enumerated
        );
    }

    #[test]
    fn pruning_skips_most_partitions() {
        let table = d695_table(48);
        let eval = partition_evaluate(&table, 48, &EvaluateConfig::up_to_tams(4)).unwrap();
        assert!(
            eval.stats.aborted > eval.stats.completed,
            "τ-pruning should dominate: {:?}",
            eval.stats
        );
    }

    #[test]
    fn pruning_does_not_change_the_result() {
        let table = d695_table(40);
        let pruned = partition_evaluate(&table, 40, &EvaluateConfig::up_to_tams(3)).unwrap();
        let unpruned = partition_evaluate(
            &table,
            40,
            &EvaluateConfig {
                prune: false,
                ..EvaluateConfig::up_to_tams(3)
            },
        )
        .unwrap();
        assert_eq!(pruned.result.soc_time(), unpruned.result.soc_time());
        assert_eq!(unpruned.stats.aborted, 0);
        assert_eq!(unpruned.stats.completed, unpruned.stats.enumerated);
    }

    #[test]
    fn more_tams_never_hurt_the_heuristic_bound() {
        let table = d695_table(32);
        let b2 = partition_evaluate(&table, 32, &EvaluateConfig::up_to_tams(2)).unwrap();
        let b4 = partition_evaluate(&table, 32, &EvaluateConfig::up_to_tams(4)).unwrap();
        assert!(b4.result.soc_time() <= b2.result.soc_time());
    }

    #[test]
    fn single_tam_is_the_serial_schedule() {
        let table = d695_table(16);
        let eval = partition_evaluate(&table, 16, &EvaluateConfig::exact_tams(1)).unwrap();
        let serial: u64 = (0..table.num_cores()).map(|c| table.time(c, 16)).sum();
        assert_eq!(eval.result.soc_time(), serial);
        assert_eq!(eval.stats.enumerated, 1);
    }

    #[test]
    fn validation_errors() {
        let table = d695_table(16);
        assert_eq!(
            partition_evaluate(&table, 0, &EvaluateConfig::up_to_tams(2)).unwrap_err(),
            PartitionError::ZeroWidth
        );
        assert_eq!(
            partition_evaluate(&table, 16, &EvaluateConfig::exact_tams(0)).unwrap_err(),
            PartitionError::EmptyTamRange {
                min_tams: 0,
                max_tams: 0
            }
        );
        assert_eq!(
            partition_evaluate(
                &table,
                16,
                &EvaluateConfig {
                    min_tams: 3,
                    max_tams: 2,
                    ..EvaluateConfig::up_to_tams(2)
                }
            )
            .unwrap_err(),
            PartitionError::EmptyTamRange {
                min_tams: 3,
                max_tams: 2
            }
        );
        assert_eq!(
            partition_evaluate(&table, 32, &EvaluateConfig::up_to_tams(2)).unwrap_err(),
            PartitionError::TableTooNarrow {
                required: 32,
                max_width: 16
            }
        );
        assert_eq!(
            partition_evaluate(&table, 4, &EvaluateConfig::exact_tams(9)).unwrap_err(),
            PartitionError::NoFeasiblePartition { total_width: 4 }
        );
    }

    #[test]
    fn stats_efficiency() {
        let stats = PruneStats {
            enumerated: 100,
            completed: 2,
            aborted: 98,
        };
        assert!((stats.efficiency(100.0) - 0.02).abs() < 1e-12);
        assert_eq!(stats.efficiency(0.0), 0.0);
    }

    #[test]
    fn stats_merge_is_associative() {
        let chunks = [
            PruneStats {
                enumerated: 10,
                completed: 3,
                aborted: 7,
            },
            PruneStats {
                enumerated: 5,
                completed: 5,
                aborted: 0,
            },
            PruneStats {
                enumerated: 8,
                completed: 1,
                aborted: 7,
            },
        ];
        // (a + b) + c == a + (b + c) == sum in any order.
        let mut left = chunks[0];
        left.merge(chunks[1]);
        left.merge(chunks[2]);
        let mut right = chunks[1];
        right.merge(chunks[2]);
        let mut a = chunks[0];
        a.merge(right);
        assert_eq!(left, a);
        let mut reversed = chunks[2];
        reversed += chunks[1];
        reversed += chunks[0];
        assert_eq!(left, reversed);
        assert_eq!(left.enumerated, left.completed + left.aborted);
    }

    #[test]
    fn result_partition_is_canonical() {
        let table = d695_table(24);
        let eval = partition_evaluate(&table, 24, &EvaluateConfig::up_to_tams(5)).unwrap();
        let w = eval.tams.widths();
        assert!(w.windows(2).all(|p| p[0] <= p[1]));
    }

    #[test]
    fn expired_budget_returns_partial_but_valid_result() {
        let table = d695_table(48);
        let config = EvaluateConfig {
            budget: SearchBudget::time_limited(Duration::ZERO),
            ..EvaluateConfig::up_to_tams(6)
        };
        let eval = partition_evaluate(&table, 48, &config).unwrap();
        assert!(!eval.complete, "zero budget cannot scan everything");
        // Exactly the first generation (one chunk) ran.
        assert_eq!(eval.stats.enumerated, config.parallel.chunk_size as u64);
        assert_eq!(
            eval.stats.enumerated,
            eval.stats.completed + eval.stats.aborted
        );
        assert_eq!(eval.tams.total_width(), 48, "partial result is valid");
    }

    #[test]
    fn seeded_scan_keeps_the_winner_with_strictly_fewer_completions() {
        let table = d695_table(32);
        let cold = partition_evaluate(&table, 32, &EvaluateConfig::up_to_tams(4)).unwrap();
        // Seeding with the cold run's own achieved time models a
        // warm-start cache hit (same SOC seen before).
        let seeded = partition_evaluate(
            &table,
            32,
            &EvaluateConfig {
                seed_tau: Some(cold.result.soc_time()),
                ..EvaluateConfig::up_to_tams(4)
            },
        )
        .unwrap();
        assert_eq!(
            seeded.tams, cold.tams,
            "warm start must not change the winner"
        );
        assert_eq!(seeded.result, cold.result);
        assert!(seeded.complete);
        assert_eq!(seeded.stats.enumerated, cold.stats.enumerated);
        assert!(
            seeded.stats.completed < cold.stats.completed,
            "the seed must abort evaluations the cold scan completed: {:?} vs {:?}",
            seeded.stats,
            cold.stats
        );
    }

    #[test]
    fn seeded_scan_is_thread_count_invariant() {
        let table = d695_table(32);
        let cold = partition_evaluate(&table, 32, &EvaluateConfig::up_to_tams(4)).unwrap();
        let run = |threads: usize| {
            partition_evaluate(
                &table,
                32,
                &EvaluateConfig {
                    seed_tau: Some(cold.result.soc_time()),
                    parallel: ParallelConfig::with_threads(threads),
                    ..EvaluateConfig::up_to_tams(4)
                },
            )
            .unwrap()
        };
        let reference = run(1);
        for threads in [2, 8] {
            assert_eq!(run(threads), reference, "threads {threads}");
        }
    }

    #[test]
    fn unreachable_seed_falls_back_to_a_cold_rescan() {
        let table = d695_table(24);
        let cold = partition_evaluate(&table, 24, &EvaluateConfig::up_to_tams(3)).unwrap();
        let seeded = partition_evaluate(
            &table,
            24,
            &EvaluateConfig {
                seed_tau: Some(0), // no architecture tests in 0 cycles
                ..EvaluateConfig::up_to_tams(3)
            },
        )
        .unwrap();
        assert_eq!(seeded.tams, cold.tams);
        assert_eq!(seeded.result, cold.result);
        assert!(seeded.complete);
        // The wasted seeded pass is accounted for, not hidden.
        assert_eq!(seeded.stats.enumerated, 2 * cold.stats.enumerated);
        assert_eq!(
            seeded.stats.enumerated,
            seeded.stats.completed + seeded.stats.aborted
        );
    }

    #[test]
    fn rebuild_matrix_equals_a_direct_build_for_every_partition() {
        // The memo must be invisible: whether a matrix comes from the
        // effective-width cache or straight from the table, it must be
        // bit-identical — including the *actual* (uncollapsed) widths
        // the heuristic's tie-breaks compare.
        let table = d695_table(64);
        let effective = table.effective_widths();
        let mut scratch = ScanScratch::new();
        let mut memo_hits = 0u32;
        for b in 1..=3u32 {
            for widths in Partitions::new(64, b) {
                let tams = TamSet::new(widths).unwrap();
                let sig: Vec<u32> = tams
                    .widths()
                    .iter()
                    .map(|&w| effective[w as usize])
                    .collect();
                if sig != tams.widths() {
                    memo_hits += 1;
                }
                scratch.rebuild_matrix(&table, &tams, &effective).unwrap();
                let direct = CostMatrix::from_table(&table, &tams).unwrap();
                assert_eq!(scratch.matrix, direct, "widths {:?}", tams.widths());
            }
        }
        assert!(memo_hits > 0, "W=64 must exercise the saturated-part memo");
    }

    #[test]
    fn memoized_scan_matches_a_naive_unpruned_scan() {
        // End-to-end cross-check of the allocation-free hot path against
        // the straightforward allocate-per-partition loop it replaced.
        use tamopt_assign::{core_assign, CoreAssignOptions};
        let table = d695_table(64);
        let config = EvaluateConfig {
            prune: false,
            ..EvaluateConfig::up_to_tams(3)
        };
        let eval = partition_evaluate(&table, 64, &config).unwrap();
        let mut best: Option<(u64, TamSet, AssignResult)> = None;
        for b in 1..=3u32 {
            for widths in Partitions::new(64, b) {
                let tams = TamSet::new(widths).unwrap();
                let costs = CostMatrix::from_table(&table, &tams).unwrap();
                let result = core_assign(&costs, None, &CoreAssignOptions::default())
                    .into_result()
                    .expect("unbounded");
                if best.as_ref().is_none_or(|(t, _, _)| result.soc_time() < *t) {
                    best = Some((result.soc_time(), tams, result));
                }
            }
        }
        let (_, tams, result) = best.unwrap();
        assert_eq!(eval.tams, tams);
        assert_eq!(eval.result, result);
    }

    #[test]
    fn node_budget_truncates_deterministically() {
        let table = d695_table(48);
        let run = |threads: usize| {
            partition_evaluate(
                &table,
                48,
                &EvaluateConfig {
                    budget: SearchBudget::node_limited(100),
                    parallel: ParallelConfig::with_threads(threads),
                    ..EvaluateConfig::up_to_tams(6)
                },
            )
            .unwrap()
        };
        let reference = run(1);
        assert!(!reference.complete);
        // Whole generations: 32 + 64 + 128 dispatched items.
        assert_eq!(reference.stats.enumerated, 224);
        assert_eq!(run(4), reference, "node-budget truncation is deterministic");
    }
}
