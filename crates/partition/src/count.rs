//! Counting unique TAM width partitions.
//!
//! The number of ways to split a total width `W` over `B`
//! indistinguishable TAMs is the number of partitions of the integer `W`
//! into exactly `B` positive parts, `p(W, B)`. The paper estimates it
//! (citing van Lint & Wilson) as `V(W,B) ≈ W^(B-1) / (B!·(B-1)!)` for
//! `W ≫ B`, and derives the exact closed form for `B = 3`; its Table 1
//! compares this estimate against the number of partitions its heuristic
//! actually evaluates to completion.
//!
//! This module provides the exact count by dynamic programming
//! ([`unique_partitions`]) and the paper's estimate ([`estimate`]).

/// Exact number of partitions of `total` into exactly `parts` positive
/// parts, by the recurrence `p(n, k) = p(n-1, k-1) + p(n-k, k)`.
///
/// `p(0, 0) = 1`; `p(n, 0) = 0` for `n > 0`; `p(n, k) = 0` for `n < k`.
///
/// # Example
///
/// ```
/// use tamopt_partition::count::unique_partitions;
///
/// // Section 4.4 of the paper: "the 341 unique partitions for W = 64
/// // and B = 3".
/// assert_eq!(unique_partitions(64, 3), 341);
/// ```
pub fn unique_partitions(total: u32, parts: u32) -> u64 {
    let (n, k) = (total as usize, parts as usize);
    if k == 0 {
        return u64::from(n == 0);
    }
    if n < k {
        return 0;
    }
    // dp[i][j] = p(i, j), built bottom-up.
    let mut dp = vec![vec![0u64; k + 1]; n + 1];
    dp[0][0] = 1;
    for i in 1..=n {
        for j in 1..=k.min(i) {
            dp[i][j] = dp[i - 1][j - 1] + if i >= j { dp[i - j][j] } else { 0 };
        }
    }
    dp[n][k]
}

/// Number of partitions of `total` into at most `parts` positive parts
/// (the architecture space of *P_NPAW* with `B ≤ parts`).
pub fn partitions_up_to(total: u32, parts: u32) -> u64 {
    (1..=parts).map(|b| unique_partitions(total, b)).sum()
}

/// The paper's asymptotic estimate `V(W, B) = W^(B-1) / (B!·(B-1)!)`,
/// accurate for `W ≫ B` (the paper presents it for `W > 40`).
///
/// # Example
///
/// ```
/// use tamopt_partition::count::estimate;
///
/// // Table 1, first row: V(44, 6) ≈ 1909.
/// assert_eq!(estimate(44, 6).round() as u64, 1909);
/// ```
pub fn estimate(total: u32, parts: u32) -> f64 {
    if parts == 0 {
        return 0.0;
    }
    let w = f64::from(total);
    let b = parts as u64;
    let mut denom = 1.0;
    for i in 1..=b {
        denom *= i as f64;
    }
    for i in 1..b {
        denom *= i as f64;
    }
    w.powi(parts as i32 - 1) / denom
}

/// Number of *compositions* (ordered splits) of `total` into exactly
/// `parts` positive parts: `C(total-1, parts-1)`. This is what a naive
/// nested-loop enumeration without the paper's Line-1 bound would visit;
/// the ratio to [`unique_partitions`] quantifies pruning level 1.
pub fn compositions(total: u32, parts: u32) -> u64 {
    if parts == 0 || total < parts {
        return u64::from(parts == 0 && total == 0);
    }
    binomial(u64::from(total) - 1, u64::from(parts) - 1)
}

fn binomial(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result: u64 = 1;
    for i in 0..k {
        result = result * (n - i) / (i + 1);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_cases_by_hand() {
        // Partitions of 5 into 2 parts: 1+4, 2+3.
        assert_eq!(unique_partitions(5, 2), 2);
        // Partitions of 6 into 3 parts: 1+1+4, 1+2+3, 2+2+2.
        assert_eq!(unique_partitions(6, 3), 3);
        assert_eq!(unique_partitions(4, 4), 1);
        assert_eq!(unique_partitions(3, 4), 0);
        assert_eq!(unique_partitions(0, 0), 1);
        assert_eq!(unique_partitions(1, 0), 0);
        assert_eq!(unique_partitions(7, 1), 1);
    }

    #[test]
    fn matches_paper_closed_form_for_three_tams() {
        // The paper's B = 3 closed form evaluates to 341 at W = 64.
        assert_eq!(unique_partitions(64, 3), 341);
        // Round((W^2)/12) is the standard closed form for p(n, 3).
        for w in 3..=100u32 {
            let expected = ((f64::from(w) * f64::from(w)) / 12.0).round() as u64;
            assert_eq!(unique_partitions(w, 3), expected, "W = {w}");
        }
    }

    #[test]
    fn estimate_matches_table1_values() {
        // Table 1 of the paper: V(W, B) for B = 6 matches the
        // W^(B-1)/(B!(B-1)!) formula to within rounding.
        let cases_b6 = [
            (44, 1909),
            (48, 2949),
            (52, 4401),
            (56, 6374),
            (60, 9000),
            (64, 12428),
        ];
        for (w, v) in cases_b6 {
            let e = estimate(w, 6);
            let err = (e - v as f64).abs() / v as f64;
            assert!(err < 0.01, "V({w},6) = {e}, table says {v}");
        }
        // The paper's B = 7 column does not follow the same closed form
        // (the PDF's formula is garbled there); it tracks the estimate
        // only to within tens of percent. Keep a loose sanity envelope.
        let cases_b7 = [
            (44, 1571),
            (48, 2889),
            (52, 5059),
            (56, 8499),
            (60, 13776),
            (64, 21643),
        ];
        for (w, v) in cases_b7 {
            let e = estimate(w, 7);
            let ratio = e / v as f64;
            assert!(
                (0.5..2.0).contains(&ratio),
                "V({w},7) = {e} is not within 2x of the paper's {v}"
            );
        }
    }

    #[test]
    fn estimate_tracks_exact_count_for_large_w() {
        // The estimate is asymptotic; at W = 64, B = 3 it is within ~15 %.
        let exact = unique_partitions(64, 3) as f64;
        let est = estimate(64, 3);
        assert!(
            (est - exact).abs() / exact < 0.15,
            "estimate {est} vs exact {exact}"
        );
    }

    #[test]
    fn compositions_count() {
        assert_eq!(compositions(5, 2), 4); // 1+4, 2+3, 3+2, 4+1
        assert_eq!(compositions(6, 3), 10); // C(5, 2)
        assert_eq!(compositions(3, 5), 0);
        assert_eq!(compositions(64, 3), 1953); // C(63, 2)
    }

    #[test]
    fn compositions_dominate_partitions() {
        for w in [8u32, 16, 24] {
            for b in 1..=5u32 {
                assert!(compositions(w, b) >= unique_partitions(w, b));
            }
        }
    }

    #[test]
    fn partitions_up_to_sums() {
        assert_eq!(
            partitions_up_to(10, 3),
            unique_partitions(10, 1) + unique_partitions(10, 2) + unique_partitions(10, 3)
        );
    }

    #[test]
    fn zero_parts_estimate() {
        assert_eq!(estimate(10, 0), 0.0);
    }
}
