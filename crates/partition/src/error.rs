use std::error::Error;
use std::fmt;

use tamopt_assign::AssignError;

/// Error type for partition optimization.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PartitionError {
    /// The total TAM width was zero.
    ZeroWidth,
    /// The TAM-count range was empty (`min_tams == 0` or
    /// `min_tams > max_tams`).
    EmptyTamRange {
        /// Requested minimum TAM count.
        min_tams: u32,
        /// Requested maximum TAM count.
        max_tams: u32,
    },
    /// No partition exists in the requested range (every TAM needs at
    /// least one wire, so `min_tams > total_width` has no solutions).
    NoFeasiblePartition {
        /// Requested total width.
        total_width: u32,
    },
    /// The wrapper time table does not cover the total width.
    TableTooNarrow {
        /// Width required (`total_width`, for the single-TAM partition).
        required: u32,
        /// Width the table covers.
        max_width: u32,
    },
    /// An assignment solver failed.
    Assign(AssignError),
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::ZeroWidth => f.write_str("total tam width is zero"),
            PartitionError::EmptyTamRange { min_tams, max_tams } => {
                write!(f, "empty tam-count range {min_tams}..={max_tams}")
            }
            PartitionError::NoFeasiblePartition { total_width } => {
                write!(
                    f,
                    "no feasible partition of width {total_width} in the requested range"
                )
            }
            PartitionError::TableTooNarrow {
                required,
                max_width,
            } => write!(
                f,
                "time table covers widths up to {max_width} but the architecture needs {required}"
            ),
            PartitionError::Assign(e) => write!(f, "assignment failure: {e}"),
        }
    }
}

impl Error for PartitionError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PartitionError::Assign(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AssignError> for PartitionError {
    fn from(e: AssignError) -> Self {
        PartitionError::Assign(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_source() {
        assert!(PartitionError::ZeroWidth.to_string().contains("zero"));
        let e = PartitionError::Assign(AssignError::NoTams);
        assert!(e.to_string().contains("assignment"));
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&PartitionError::ZeroWidth).is_none());
    }
}
