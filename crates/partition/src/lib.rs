//! TAM width partitioning and the full co-optimization pipeline —
//! problems *P_PAW* and *P_NPAW* of the paper.
//!
//! Given a total TAM width `W`, the SOC test architecture must decide how
//! many TAMs to build (`B`), how to split `W` over them (a *partition* of
//! `W` into `B` positive parts), and which core rides which TAM. This
//! crate implements both sides of the paper's comparison:
//!
//! * [`exhaustive`] — the baseline of the paper's reference [8]:
//!   enumerate every unique partition and solve each core assignment
//!   *exactly*;
//! * [`evaluate`] — the paper's new `Partition_evaluate` heuristic
//!   (Figure 3) with its three levels of solution-space pruning:
//!   1. only *unique* partitions are enumerated (the Line-1 bound of the
//!      `Increment` procedure — realized here as canonical
//!      non-decreasing enumeration, see [`enumerate`]);
//!   2. evaluation of a partition aborts as soon as any TAM's summed
//!      time reaches the best-known bound `τ` (lines 18–20 of
//!      `Core_assign`);
//!   3. partitions are evaluated with the `O(N²)` heuristic rather than
//!      an ILP.
//! * [`pipeline`] — the two-step methodology: `Partition_evaluate`
//!   followed by one *exact* re-optimization of the core assignment on
//!   the winning partition (Section 3.2).
//! * [`count`] — partition counting: exact `p(W,B)` and the paper's
//!   asymptotic estimate `V(W,B) ≈ W^(B-1)/(B!·(B-1)!)` used in its
//!   Table 1.
//!
//! # Example
//!
//! ```
//! use tamopt_partition::pipeline::{co_optimize, PipelineConfig};
//! use tamopt_soc::benchmarks;
//! use tamopt_wrapper::TimeTable;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let soc = benchmarks::d695();
//! let table = TimeTable::new(&soc, 32)?;
//! let result = co_optimize(&table, 32, &PipelineConfig::up_to_tams(4))?;
//! println!(
//!     "best architecture: {} TAMs ({}), {} cycles",
//!     result.tams.len(),
//!     result.tams,
//!     result.optimized.soc_time()
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod bounds;
pub mod count;
pub mod enumerate;
mod error;
pub mod evaluate;
pub mod exhaustive;
pub mod pipeline;

pub use crate::error::PartitionError;
pub use crate::evaluate::{
    partition_evaluate, partition_evaluate_top_k, EvalResult, EvaluateConfig, MatrixMemo,
    PruneStats, RankedEvalResult, RankedPartition,
};
pub use crate::pipeline::{
    co_optimize, co_optimize_frontier, co_optimize_frontier_seeded, co_optimize_top_k,
    CoOptimization, FinalStep, FrontierResult, PipelineConfig, RankedCoOptimization,
};
