//! Architecture-independent lower bounds on the SOC testing time.
//!
//! Two bounds hold for *any* test-bus architecture of total width `W`:
//!
//! 1. **Bottleneck bound** — no core can be tested faster than with all
//!    `W` wires to itself: `T ≥ max_c T_c(W)`. This is the bound the
//!    paper's p31108 hits from mid-range widths on (Tables 11–13).
//! 2. **Bandwidth (wire-cycle) bound** — while core `c` tests on a TAM
//!    of width `w`, it occupies `w` wires for `T_c(w)` cycles, i.e. at
//!    least `min_w w·T_c(w)` wire-cycles; the whole test has `W·T`
//!    wire-cycles available, so `T ≥ ⌈Σ_c min_w w·T_c(w) / W⌉`.
//!
//! [`lower_bound`] returns the max of both. Every solver in this crate
//! is tested against it.

use tamopt_wrapper::TimeTable;

/// The bottleneck bound: `max_c T_c(max_width)` where `max_width` is
/// the table's full width (pass a table built at the SOC total width).
pub fn bottleneck_bound(table: &TimeTable) -> u64 {
    (0..table.num_cores())
        .map(|c| table.min_time(c))
        .max()
        .unwrap_or(0)
}

/// The bandwidth bound: `⌈Σ_c min_w w·T_c(w) / W⌉` with `W` the table's
/// full width.
pub fn bandwidth_bound(table: &TimeTable) -> u64 {
    let w_total = u64::from(table.max_width());
    let wire_cycles: u64 = (0..table.num_cores())
        .map(|c| {
            table
                .row(c)
                .iter()
                .enumerate()
                .map(|(i, &t)| (i as u64 + 1) * t)
                .min()
                .expect("table rows are non-empty")
        })
        .sum();
    wire_cycles.div_ceil(w_total)
}

/// The combined architecture-independent lower bound
/// (`max(bottleneck, bandwidth)`).
///
/// # Example
///
/// ```
/// use tamopt_partition::bounds::lower_bound;
/// use tamopt_partition::{partition_evaluate, EvaluateConfig};
/// use tamopt_soc::benchmarks;
/// use tamopt_wrapper::TimeTable;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let table = TimeTable::new(&benchmarks::d695(), 32)?;
/// let eval = partition_evaluate(&table, 32, &EvaluateConfig::up_to_tams(4))?;
/// assert!(eval.result.soc_time() >= lower_bound(&table));
/// # Ok(())
/// # }
/// ```
pub fn lower_bound(table: &TimeTable) -> u64 {
    bottleneck_bound(table).max(bandwidth_bound(table))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::{partition_evaluate, EvaluateConfig};
    use crate::exhaustive::{self, ExhaustiveConfig};
    use tamopt_soc::benchmarks;

    #[test]
    fn bounds_hold_for_exhaustive_optima() {
        for soc in benchmarks::all() {
            let table = TimeTable::new(&soc, 24).unwrap();
            let lb = lower_bound(&table);
            let best = exhaustive::solve(&table, 24, &ExhaustiveConfig::up_to_tams(3)).unwrap();
            assert!(
                best.result.soc_time() >= lb,
                "{}: optimum {} below bound {lb}",
                soc.name(),
                best.result.soc_time()
            );
        }
    }

    #[test]
    fn bounds_hold_for_heuristic_results() {
        for soc in benchmarks::all() {
            let table = TimeTable::new(&soc, 48).unwrap();
            let lb = lower_bound(&table);
            let eval = partition_evaluate(&table, 48, &EvaluateConfig::up_to_tams(6)).unwrap();
            assert!(eval.result.soc_time() >= lb, "{}", soc.name());
        }
    }

    #[test]
    fn bandwidth_bound_bites_for_single_tam() {
        // At B = 1 everything is serial: the bandwidth bound is within a
        // factor of the serial time for balanced workloads.
        let soc = benchmarks::d695();
        let table = TimeTable::new(&soc, 16).unwrap();
        let serial: u64 = (0..table.num_cores()).map(|c| table.time(c, 16)).sum();
        let bw = bandwidth_bound(&table);
        assert!(bw <= serial);
        assert!(
            bw * 16 >= serial,
            "bound uselessly weak: {bw} vs serial {serial}"
        );
    }

    #[test]
    fn bottleneck_dominates_on_p31108_at_large_width() {
        // The plateau SOC: at W = 64 the bottleneck bound is the binding
        // one (the paper's 544579-cycle analogue).
        let soc = benchmarks::p31108();
        let table = TimeTable::new(&soc, 64).unwrap();
        assert!(bottleneck_bound(&table) >= bandwidth_bound(&table));
        assert_eq!(lower_bound(&table), bottleneck_bound(&table));
    }

    #[test]
    fn bounds_monotone_in_width() {
        let soc = benchmarks::d695();
        let mut last = u64::MAX;
        for w in [8u32, 16, 32, 64] {
            let table = TimeTable::new(&soc, w).unwrap();
            let lb = lower_bound(&table);
            assert!(lb <= last, "bound rose with more wires at W={w}");
            last = lb;
        }
    }
}
