//! # tamopt_engine — deterministic parallel search for the tamopt stack
//!
//! The paper's `Partition_evaluate` scores every unique partition of the
//! TAM width `W` under a shared incumbent bound `τ` — an embarrassingly
//! parallel search. This crate provides the three pieces that let every
//! solver in the workspace run it (and its exact cousins) concurrently
//! *without giving up reproducibility*:
//!
//! * [`SearchBudget`] — the single wall-clock / node / cancellation
//!   budget threaded through all solver layers, replacing the per-crate
//!   `time_limit` fields;
//! * [`SharedIncumbent`] — an atomic `τ` bound workers prune against;
//! * [`search_chunks`] — a `std::thread`-based chunked executor whose
//!   generation-barrier schedule makes `threads = N` bit-identical to
//!   `threads = 1` (see [`executor`] for the determinism argument).
//!
//! No external dependencies: the executor is built on `std::thread`
//! scoped threads, a [`std::sync::Barrier`] pair and atomics.
//!
//! # Example
//!
//! ```
//! use tamopt_engine::{search_chunks, ParallelConfig, SearchBudget, SharedIncumbent};
//!
//! // Minimize (i * 37) % 101 over 0..500, pruning with a shared bound.
//! let incumbent = SharedIncumbent::unbounded();
//! let mut best = u64::MAX;
//! let status = search_chunks(
//!     (0..500u64).map(|i| (i * 37) % 101),
//!     &ParallelConfig::with_threads(4),
//!     &SearchBudget::unlimited(),
//!     |_base, chunk: Vec<u64>| -> Result<u64, ()> {
//!         let tau = incumbent.get();
//!         Ok(chunk.into_iter().filter(|&v| v < tau).min().unwrap_or(u64::MAX))
//!     },
//!     |chunk_min| {
//!         incumbent.tighten(chunk_min);
//!         best = best.min(chunk_min);
//!         Ok(())
//!     },
//! )
//! .unwrap();
//! assert!(status.is_complete());
//! assert_eq!(best, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
pub mod executor;
mod incumbent;
mod ranking;

pub use crate::budget::{CancelHandle, SearchBudget};
pub use crate::executor::{
    search_chunks, search_chunks_with, search_generations, ParallelConfig, SearchStatus,
};
pub use crate::incumbent::SharedIncumbent;
pub use crate::ranking::Ranking;
