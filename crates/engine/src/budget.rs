//! The unified [`SearchBudget`]: one deadline / node / cancellation
//! mechanism for every search in the workspace.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared, cooperative budget for a (possibly parallel) search.
///
/// A budget combines three independent limits, all optional:
///
/// * a **wall-clock deadline** — fixed at construction, so one budget
///   threaded through several solver layers bounds their *total*
///   runtime, not each layer separately;
/// * a **node budget** — an upper bound on search nodes, interpreted by
///   each solver against its own node counter;
/// * **cancellation flags** — [`CancelHandle`]s that any thread can
///   trip to stop the search cooperatively.
///
/// The default budget is unlimited. Budgets are cheap to clone and are
/// meant to be passed down the whole solver stack; solvers poll
/// [`SearchBudget::is_exhausted`] at coarse intervals and return their
/// best incumbent when it trips — a budget never aborts mid-evaluation,
/// it only stops further work.
#[derive(Debug, Clone, Default)]
pub struct SearchBudget {
    deadline: Option<Instant>,
    node_budget: Option<u64>,
    cancel: Vec<Arc<AtomicBool>>,
}

/// A handle that cancels the [`SearchBudget`] it was created from (and
/// every budget derived from it via [`SearchBudget::intersect`]).
#[derive(Debug, Clone)]
pub struct CancelHandle(Arc<AtomicBool>);

impl CancelHandle {
    /// Requests cooperative cancellation; idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested through this handle.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

impl SearchBudget {
    /// No limits at all (the default).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// A budget expiring `limit` from **now**. The clock starts here, so
    /// build the budget when the work starts, not when configs are
    /// assembled.
    pub fn time_limited(limit: Duration) -> Self {
        Self::default().and_time_limit(limit)
    }

    /// A budget expiring at `deadline`.
    pub fn with_deadline(deadline: Instant) -> Self {
        SearchBudget {
            deadline: Some(deadline),
            ..Self::default()
        }
    }

    /// A budget of at most `nodes` search nodes.
    pub fn node_limited(nodes: u64) -> Self {
        SearchBudget {
            node_budget: Some(nodes),
            ..Self::default()
        }
    }

    /// Tightens the budget to also expire `limit` from now. An
    /// `Instant` overflow (absurdly large limits) leaves the budget
    /// unbounded in time.
    pub fn and_time_limit(mut self, limit: Duration) -> Self {
        if let Some(deadline) = Instant::now().checked_add(limit) {
            self.deadline = Some(match self.deadline {
                Some(d) => d.min(deadline),
                None => deadline,
            });
        }
        self
    }

    /// Tightens the budget to at most `nodes` search nodes.
    pub fn and_node_budget(mut self, nodes: u64) -> Self {
        self.node_budget = Some(self.node_budget.map_or(nodes, |n| n.min(nodes)));
        self
    }

    /// Drops the node budget, keeping deadline and cancellation.
    ///
    /// Deadlines and cancellation are global — they mean the same thing
    /// in every layer — but node counts are **per search layer** (an
    /// enumeration counts partitions, a branch-and-bound counts tree
    /// nodes). Use this before intersecting an outer scan's budget into
    /// an inner solver so the outer node budget is not misread as a cap
    /// on the inner solver's own node counter.
    pub fn without_node_budget(mut self) -> Self {
        self.node_budget = None;
        self
    }

    /// Attaches a fresh cancellation flag, returning the tightened
    /// budget and the [`CancelHandle`] that trips it.
    pub fn cancellable(mut self) -> (Self, CancelHandle) {
        let flag = Arc::new(AtomicBool::new(false));
        self.cancel.push(Arc::clone(&flag));
        (self, CancelHandle(flag))
    }

    /// The wall-clock deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The node budget, if any.
    pub fn node_budget(&self) -> Option<u64> {
        self.node_budget
    }

    /// Time left until the deadline (`None` = unbounded; zero when the
    /// deadline has passed).
    pub fn remaining_time(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Whether the wall-clock deadline has passed.
    pub fn out_of_time(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Whether any attached [`CancelHandle`] has been tripped.
    pub fn cancelled(&self) -> bool {
        self.cancel.iter().any(|f| f.load(Ordering::Acquire))
    }

    /// Whether the search should stop: cancelled, out of time, or past
    /// the node budget given `nodes_used` nodes already spent.
    pub fn is_exhausted(&self, nodes_used: u64) -> bool {
        self.node_budget.is_some_and(|n| nodes_used >= n) || self.cancelled() || self.out_of_time()
    }

    /// The tighter combination of two budgets: earlier deadline, smaller
    /// node budget, and the union of both cancellation flags. Used when
    /// a layer with its own budget runs under an enclosing one (e.g. a
    /// per-partition exact solve inside a time-boxed enumeration).
    pub fn intersect(&self, other: &Self) -> Self {
        let mut cancel = self.cancel.clone();
        for flag in &other.cancel {
            if !cancel.iter().any(|f| Arc::ptr_eq(f, flag)) {
                cancel.push(Arc::clone(flag));
            }
        }
        SearchBudget {
            deadline: match (self.deadline, other.deadline) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            },
            node_budget: match (self.node_budget, other.node_budget) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            },
            cancel,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let b = SearchBudget::unlimited();
        assert!(!b.is_exhausted(u64::MAX));
        assert!(!b.out_of_time());
        assert!(!b.cancelled());
        assert!(b.remaining_time().is_none());
    }

    #[test]
    fn zero_time_limit_is_immediately_exhausted() {
        let b = SearchBudget::time_limited(Duration::ZERO);
        assert!(b.out_of_time());
        assert!(b.is_exhausted(0));
        assert_eq!(b.remaining_time(), Some(Duration::ZERO));
    }

    #[test]
    fn generous_time_limit_is_not_exhausted() {
        let b = SearchBudget::time_limited(Duration::from_secs(3600));
        assert!(!b.out_of_time());
        assert!(!b.is_exhausted(0));
        assert!(b.remaining_time().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn node_budget_counts() {
        let b = SearchBudget::node_limited(100);
        assert!(!b.is_exhausted(99));
        assert!(b.is_exhausted(100));
        assert_eq!(b.node_budget(), Some(100));
    }

    #[test]
    fn cancellation_trips_the_budget() {
        let (b, handle) = SearchBudget::unlimited().cancellable();
        assert!(!b.is_exhausted(0));
        assert!(!handle.is_cancelled());
        handle.cancel();
        assert!(handle.is_cancelled());
        assert!(b.cancelled());
        assert!(b.is_exhausted(0));
        // A clone taken before cancellation sees it too.
        assert!(b.clone().cancelled());
    }

    #[test]
    fn intersect_takes_the_tighter_limits() {
        let a = SearchBudget::node_limited(50);
        let b = SearchBudget::node_limited(100).and_time_limit(Duration::from_secs(3600));
        let i = a.intersect(&b);
        assert_eq!(i.node_budget(), Some(50));
        assert!(i.deadline().is_some());
        let j = b.intersect(&a);
        assert_eq!(j.node_budget(), Some(50));
        assert!(j.deadline().is_some());
    }

    #[test]
    fn intersect_unions_cancellation() {
        let (a, ha) = SearchBudget::unlimited().cancellable();
        let (b, _hb) = SearchBudget::unlimited().cancellable();
        let i = a.intersect(&b);
        assert!(!i.cancelled());
        ha.cancel();
        assert!(i.cancelled());
        // Intersecting a budget with itself does not duplicate flags.
        let same = a.intersect(&a);
        assert_eq!(same.cancel.len(), a.cancel.len());
    }

    #[test]
    fn and_time_limit_keeps_the_earlier_deadline() {
        let b = SearchBudget::time_limited(Duration::ZERO).and_time_limit(Duration::from_secs(60));
        assert!(b.out_of_time(), "the earlier deadline must win");
    }
}
