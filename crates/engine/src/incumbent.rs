//! The shared incumbent bound `τ` — an [`AtomicU64`] all workers prune
//! against.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically tightening upper bound shared between search workers.
///
/// Holds the best (smallest) objective value found so far; `u64::MAX`
/// means "no incumbent yet". Workers read it with [`get`](Self::get) /
/// [`bound`](Self::bound) to prune, and publish improvements with
/// [`tighten`](Self::tighten) (a lock-free `fetch_min`).
///
/// For the engine's *deterministic* executor, the incumbent is only
/// tightened at generation barriers (by the merging thread), so every
/// worker of a generation reads the same value regardless of thread
/// count or timing; see [`crate::executor`].
#[derive(Debug)]
pub struct SharedIncumbent(AtomicU64);

impl Default for SharedIncumbent {
    fn default() -> Self {
        Self::unbounded()
    }
}

impl SharedIncumbent {
    /// No incumbent yet (`u64::MAX`).
    pub fn unbounded() -> Self {
        SharedIncumbent(AtomicU64::new(u64::MAX))
    }

    /// An incumbent seeded with a known feasible value.
    pub fn seeded(value: u64) -> Self {
        SharedIncumbent(AtomicU64::new(value))
    }

    /// The current bound; `u64::MAX` when no incumbent exists.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Acquire)
    }

    /// The current bound, or `None` when no incumbent exists.
    pub fn bound(&self) -> Option<u64> {
        match self.get() {
            u64::MAX => None,
            v => Some(v),
        }
    }

    /// Tightens the bound to `min(current, value)`; returns whether
    /// `value` improved on the previous bound.
    pub fn tighten(&self, value: u64) -> bool {
        self.0.fetch_min(value, Ordering::AcqRel) > value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_unbounded() {
        let inc = SharedIncumbent::unbounded();
        assert_eq!(inc.get(), u64::MAX);
        assert_eq!(inc.bound(), None);
    }

    #[test]
    fn tighten_is_monotone() {
        let inc = SharedIncumbent::unbounded();
        assert!(inc.tighten(100));
        assert_eq!(inc.bound(), Some(100));
        assert!(!inc.tighten(150), "looser values are ignored");
        assert_eq!(inc.bound(), Some(100));
        assert!(inc.tighten(40));
        assert_eq!(inc.bound(), Some(40));
        assert!(!inc.tighten(40), "equal values do not count as improvement");
    }

    #[test]
    fn seeded_starts_bounded() {
        let inc = SharedIncumbent::seeded(7);
        assert_eq!(inc.bound(), Some(7));
    }

    #[test]
    fn concurrent_tighten_keeps_the_minimum() {
        let inc = SharedIncumbent::unbounded();
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let inc = &inc;
                s.spawn(move || {
                    for v in (0..100).rev() {
                        inc.tighten(t * 1000 + v);
                    }
                });
            }
        });
        assert_eq!(inc.bound(), Some(0));
    }
}
