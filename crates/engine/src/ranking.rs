//! Bounded best-K ranking over a capped binary heap.
//!
//! The top-K query kinds keep the `K` best candidates seen so far, where
//! "best" means *smallest* under `Ord`. A full sort is wasteful when the
//! candidate stream is huge (every unique partition of the TAM width)
//! and `K` is tiny, so [`Ranking`] keeps a max-heap capped at `K`
//! entries: the heap root is the current K-th best, and a new candidate
//! only displaces it when strictly smaller.
//!
//! Determinism: [`Ranking`] itself is order-sensitive only through
//! `Ord` — callers make ranking deterministic by embedding a unique
//! tie-break (for the partition scan: the global partition index) in the
//! candidate type. With a total order, the final [`Ranking::into_sorted_vec`]
//! is independent of insertion order, which is what lets per-chunk heaps
//! merge at generation barriers without caring how chunks interleaved.

use std::collections::BinaryHeap;

/// A capped max-heap keeping the `capacity` smallest items pushed so far.
///
/// # Example
///
/// ```
/// use tamopt_engine::Ranking;
///
/// let mut top3 = Ranking::new(3);
/// for v in [9u64, 2, 7, 4, 8, 1] {
///     top3.offer(v);
/// }
/// assert_eq!(top3.into_sorted_vec(), vec![1, 2, 4]);
/// ```
#[derive(Debug, Clone)]
pub struct Ranking<T: Ord> {
    capacity: usize,
    heap: BinaryHeap<T>,
}

impl<T: Ord> Ranking<T> {
    /// Creates an empty ranking keeping the `capacity` smallest items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` — a best-0 ranking is meaningless and
    /// would silently swallow every candidate.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "Ranking capacity must be at least 1");
        Self {
            capacity,
            heap: BinaryHeap::with_capacity(capacity + 1),
        }
    }

    /// The cap this ranking was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of items currently held (`<= capacity`).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no items have been retained yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Whether the ranking holds `capacity` items, i.e. whether
    /// [`Ranking::worst`] is a valid pruning bound.
    pub fn is_full(&self) -> bool {
        self.heap.len() == self.capacity
    }

    /// The current K-th best (largest retained) item, if any.
    ///
    /// Only a *pruning* bound once [`Ranking::is_full`]: while the heap
    /// is underfull every candidate must still be admitted.
    pub fn worst(&self) -> Option<&T> {
        self.heap.peek()
    }

    /// Offers a candidate; retains it iff the ranking is underfull or
    /// the candidate is strictly smaller than the current worst.
    ///
    /// Returns `true` when the candidate was retained. Equal-to-worst
    /// candidates are rejected, so with a total order the retained set
    /// is insertion-order independent.
    pub fn offer(&mut self, item: T) -> bool {
        if self.heap.len() < self.capacity {
            self.heap.push(item);
            return true;
        }
        match self.heap.peek() {
            Some(worst) if item < *worst => {
                self.heap.push(item);
                self.heap.pop();
                true
            }
            _ => false,
        }
    }

    /// Drains `other` into `self` (barrier-time merge of chunk rankings).
    pub fn absorb(&mut self, other: Ranking<T>) {
        for item in other.heap {
            self.offer(item);
        }
    }

    /// Removes every retained item without touching the cap, so a
    /// per-worker scratch heap can be reused across chunks.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Drains the retained items best-first, leaving the ranking empty
    /// (the heap buffer is kept, so a reused scratch ranking does not
    /// reallocate). An empty ranking drains to a non-allocating `Vec`.
    pub fn drain_sorted(&mut self) -> Vec<T> {
        let mut items: Vec<T> = self.heap.drain().collect();
        items.sort_unstable();
        items
    }

    /// Consumes the ranking, returning the retained items best-first.
    pub fn into_sorted_vec(self) -> Vec<T> {
        self.heap.into_sorted_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_k_smallest_in_order() {
        let mut r = Ranking::new(4);
        for v in [50u64, 10, 40, 30, 20, 60, 5] {
            r.offer(v);
        }
        assert_eq!(r.into_sorted_vec(), vec![5, 10, 20, 30]);
    }

    #[test]
    fn underfull_ranking_admits_everything() {
        let mut r = Ranking::new(10);
        assert!(!r.is_full());
        for v in [3u64, 1, 2] {
            assert!(r.offer(v));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.into_sorted_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn equal_to_worst_is_rejected_once_full() {
        let mut r = Ranking::new(2);
        r.offer((5u64, 0usize));
        r.offer((7, 1));
        assert!(r.is_full());
        // Ties on the full key are rejected — the earlier item wins.
        assert!(!r.offer((7, 1)));
        // A strictly smaller key (same time, lower index) displaces it.
        assert!(r.offer((7, 0)));
        assert_eq!(r.into_sorted_vec(), vec![(5, 0), (7, 0)]);
    }

    #[test]
    fn retained_set_is_insertion_order_independent() {
        let items = [9u64, 3, 7, 1, 8, 2, 6, 4, 5];
        let mut forward = Ranking::new(3);
        let mut backward = Ranking::new(3);
        for &v in &items {
            forward.offer(v);
        }
        for &v in items.iter().rev() {
            backward.offer(v);
        }
        assert_eq!(forward.into_sorted_vec(), backward.into_sorted_vec());
    }

    #[test]
    fn absorb_merges_two_rankings() {
        let mut a = Ranking::new(3);
        let mut b = Ranking::new(3);
        for v in [10u64, 30, 50] {
            a.offer(v);
        }
        for v in [20u64, 40, 5] {
            b.offer(v);
        }
        a.absorb(b);
        assert_eq!(a.into_sorted_vec(), vec![5, 10, 20]);
    }

    #[test]
    fn drain_sorted_empties_without_dropping_the_cap() {
        let mut r = Ranking::new(2);
        for v in [4u64, 1, 3] {
            r.offer(v);
        }
        assert_eq!(r.drain_sorted(), vec![1, 3]);
        assert!(r.is_empty());
        assert_eq!(r.capacity(), 2);
        assert_eq!(r.drain_sorted(), Vec::<u64>::new());
    }

    #[test]
    fn clear_resets_for_reuse() {
        let mut r = Ranking::new(2);
        r.offer(1u64);
        r.offer(2);
        assert!(r.is_full());
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.capacity(), 2);
        r.offer(9);
        assert_eq!(r.into_sorted_vec(), vec![9]);
    }

    #[test]
    fn worst_is_the_pruning_bound_only_when_full() {
        let mut r = Ranking::new(3);
        r.offer(4u64);
        r.offer(2);
        assert_eq!(r.worst(), Some(&4));
        assert!(!r.is_full());
        r.offer(6);
        assert!(r.is_full());
        assert_eq!(r.worst(), Some(&6));
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_panics() {
        let _ = Ranking::<u64>::new(0);
    }

    #[test]
    fn capacity_one_tracks_the_single_minimum() {
        let mut r = Ranking::new(1);
        for v in [7u64, 3, 9, 3, 1, 1] {
            r.offer(v);
        }
        assert_eq!(r.into_sorted_vec(), vec![1]);
    }
}
