//! Deterministic chunked parallel execution of indexed search spaces,
//! with pipelined generation production.
//!
//! The executor splits a lazily produced item stream into fixed-size,
//! globally indexed *chunks*, groups chunks into *generations*, and
//! evaluates the chunks of one generation concurrently on a pool of
//! `std::thread` workers. Workers do not get a fixed pre-assignment:
//! they **pull** chunks from a shared index-ordered queue, so a slow
//! chunk never idles the rest of the pool (work stealing within a
//! generation). Between generations the caller's `merge` closure folds
//! chunk results **in chunk-index order** on the calling thread — this
//! is where a [`crate::SharedIncumbent`] is tightened, so every worker
//! of generation `g` prunes against exactly the bound established by
//! generations `0..g`, regardless of thread count or timing.
//!
//! # Pipelining
//!
//! For iterator-driven searches ([`search_chunks`] /
//! [`search_chunks_with`]) the driver **produces generation `g + 1`
//! while the workers evaluate generation `g`**: item production never
//! depends on the incumbent — only `merge` does — so prefetching is
//! determinism-safe and removes the production stall from the
//! generation barrier. The barrier-hook variant
//! ([`search_generations`]) deliberately keeps the stall: its hook may
//! read and mutate state that `merge` also touches (that is its whole
//! point), so it only ever runs while all workers are parked.
//!
//! # Determinism
//!
//! For a fixed [`ParallelConfig`] chunk geometry, the set of chunks, the
//! shared state each chunk observes, and the merge order are all
//! independent of [`ParallelConfig::threads`]. If `eval` is a pure
//! function of `(chunk index, chunk items, pre-generation shared
//! state)`, the merged outcome at `threads = N` is **bit-identical** to
//! `threads = 1`. Wall-clock truncation ([`SearchBudget::out_of_time`] /
//! cancellation) necessarily depends on timing, but it only takes effect
//! at generation boundaries: a truncated run is always equivalent to a
//! complete run over its first `k` generations. Node-budget truncation
//! counts dispatched items and is therefore fully deterministic — the
//! prefetch of generation `g + 1` is gated on exactly the same
//! dispatched-item count the non-pipelined executor polled.
//!
//! Per-worker scratch ([`search_chunks_with`]) is invisible to the
//! contract: a scratch value may cache and reuse buffers across the
//! chunks one worker happens to evaluate, but `eval`'s *result* must not
//! depend on it (reuse changes where bytes live, never what they say).
//!
//! Generations ramp up exponentially (1, 2, 4, … chunks, capped at
//! [`ParallelConfig::chunks_per_generation`]): the first chunks
//! establish a strong incumbent almost as fast as a fully sequential
//! scan would, and the later, wide generations carry the parallelism.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex, PoisonError};

use crate::SearchBudget;

/// Thread-count and chunk geometry of a parallel search.
///
/// The chunk geometry (`chunk_size`, `chunks_per_generation`) is part of
/// the *search definition*: it fixes the deterministic schedule on which
/// incumbent bounds propagate. The `threads` knob is pure execution
/// policy and never changes results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker threads; `0` means one per available CPU, `1` (the
    /// default) runs inline on the calling thread.
    pub threads: usize,
    /// Items per chunk (the unit of work stealing).
    pub chunk_size: usize,
    /// Upper bound on chunks per generation (the maximum useful
    /// parallelism and the staleness window of the incumbent bound).
    pub chunks_per_generation: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            threads: 1,
            chunk_size: 32,
            chunks_per_generation: 16,
        }
    }
}

impl ParallelConfig {
    /// Default geometry with `threads` workers (`0` = auto).
    pub fn with_threads(threads: usize) -> Self {
        ParallelConfig {
            threads,
            ..Self::default()
        }
    }

    /// The actual worker count: resolves `threads == 0` to the number of
    /// available CPUs, and clamps to `chunks_per_generation` — more
    /// workers than chunks in a generation can never be busy, and an
    /// absurd request must not exhaust OS threads.
    pub fn effective_threads(&self) -> usize {
        let requested = match self.threads {
            0 => std::thread::available_parallelism().map_or(1, usize::from),
            n => n,
        };
        requested.clamp(1, self.chunks_per_generation.max(1))
    }

    /// Chunk capacity of generation `index` under the exponential
    /// ramp-up.
    fn generation_width(&self, index: u32) -> usize {
        self.chunks_per_generation
            .max(1)
            .min(1usize << index.min(20))
    }
}

/// Whether a search ran to completion or was stopped by its
/// [`SearchBudget`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchStatus {
    /// Every item of the search space was evaluated.
    Complete,
    /// The budget expired; the merged state covers a prefix of whole
    /// generations.
    Truncated,
}

impl SearchStatus {
    /// `true` for [`SearchStatus::Complete`].
    pub fn is_complete(&self) -> bool {
        matches!(self, SearchStatus::Complete)
    }
}

/// One chunk in flight: its global base index, its items (taken by the
/// evaluating worker) and the evaluation outcome.
struct Slot<T, C, E> {
    base: u64,
    items: Vec<T>,
    out: Option<std::thread::Result<Result<C, E>>>,
}

/// Evaluates `items` chunk by chunk, possibly in parallel, and folds the
/// chunk results in deterministic chunk order.
///
/// * `eval(base, chunk)` runs on a worker thread; `base` is the global
///   index of the chunk's first item. It must not mutate shared state
///   (read-only access to e.g. a [`crate::SharedIncumbent`] is the
///   intended pattern).
/// * `merge(result)` runs on the calling thread, in ascending chunk
///   order, only between generations; it may mutate shared state.
///
/// Production is **pipelined**: the items of generation `g + 1` are
/// pulled from the iterator while generation `g` evaluates, so the
/// iterator must not observe state mutated by `merge` (an iterator over
/// a precomputed search space — the intended pattern — trivially
/// satisfies this; use [`search_generations`] when production must see
/// merged state).
///
/// Errors from `eval` and `merge` abort the search; when several chunks
/// of one generation fail, the error of the lowest-indexed chunk wins
/// (deterministically). Panics in `eval` are forwarded to the caller
/// after the worker pool shuts down cleanly.
///
/// The budget is polled between generations (the first generation always
/// runs), so a truncated search still merges at least one chunk —
/// callers relying on "partial but valid" results get a best-effort
/// incumbent even under an already-expired budget.
pub fn search_chunks<T, C, E, F, M>(
    items: impl Iterator<Item = T>,
    config: &ParallelConfig,
    budget: &SearchBudget,
    eval: F,
    merge: M,
) -> Result<SearchStatus, E>
where
    T: Send,
    C: Send,
    E: Send,
    F: Fn(u64, Vec<T>) -> Result<C, E> + Sync,
    M: FnMut(C) -> Result<(), E>,
{
    search_chunks_with(
        items,
        config,
        budget,
        || (),
        |(), base, chunk| eval(base, chunk),
        merge,
    )
}

/// [`search_chunks`] with a reusable **per-worker scratch value**.
///
/// `scratch()` runs once per worker thread (once total when `threads ==
/// 1`); the worker hands the same `&mut W` to every `eval` call it
/// executes, across all generations. This is the hook for allocation-free
/// hot paths: a scratch can hold grow-once buffers, memo tables and
/// reusable result objects, so the steady-state evaluation of one chunk
/// allocates nothing.
///
/// Determinism: which chunks share a scratch depends on thread count and
/// timing, so `eval`'s result must be independent of the scratch's
/// history — caches may change *how fast* a value is computed, never
/// *which* value.
pub fn search_chunks_with<T, C, E, W, S, F, M>(
    items: impl Iterator<Item = T>,
    config: &ParallelConfig,
    budget: &SearchBudget,
    scratch: S,
    eval: F,
    merge: M,
) -> Result<SearchStatus, E>
where
    T: Send,
    C: Send,
    E: Send,
    S: Fn() -> W + Sync,
    F: Fn(&mut W, u64, Vec<T>) -> Result<C, E> + Sync,
    M: FnMut(C) -> Result<(), E>,
{
    let mut items = items.fuse();
    search_impl(
        |_generation, capacity| items.by_ref().take(capacity).collect(),
        true,
        config,
        budget,
        &scratch,
        &eval,
        merge,
    )
}

/// [`search_chunks`] with the item stream replaced by a **generation
/// barrier hook**: `produce(generation, capacity)` runs on the calling
/// thread at every generation boundary — while all workers are parked —
/// and returns the items to dispatch in that generation.
///
/// This is the engine-level primitive behind dynamic schedulers (e.g. a
/// live request queue that re-reads its priority queue between
/// generations): because the hook runs under the barrier, it may consult
/// and mutate caller state that `merge` also touches, admit work that
/// arrived after the search started, and reorder what it hands out —
/// all without breaking the determinism contract, which now reads: for a
/// fixed *sequence of produced generations*, the merged outcome at
/// `threads = N` is bit-identical to `threads = 1`. (Because the hook
/// may observe merged state, this variant is **not** pipelined — the
/// production stall is the price of the richer contract.)
///
/// `capacity` is the generation's chunk budget in items
/// (`generation_width(g) × chunk_size` under the exponential ramp);
/// returning more than `capacity` items simply widens the generation
/// (still deterministically — the schedule depends only on the hook's
/// return values). Returning an **empty** vector ends the search with
/// [`SearchStatus::Complete`]; the hook may block (e.g. on a condition
/// variable) to wait for more work instead. The budget is polled between
/// generations, *before* the hook runs, so a blocking hook is not
/// consulted once the budget has expired.
pub fn search_generations<T, C, E, F, M, P>(
    produce: P,
    config: &ParallelConfig,
    budget: &SearchBudget,
    eval: F,
    merge: M,
) -> Result<SearchStatus, E>
where
    T: Send,
    C: Send,
    E: Send,
    P: FnMut(u32, usize) -> Vec<T>,
    F: Fn(u64, Vec<T>) -> Result<C, E> + Sync,
    M: FnMut(C) -> Result<(), E>,
{
    search_impl(
        produce,
        false,
        config,
        budget,
        &|| (),
        &|(), base, chunk| eval(base, chunk),
        merge,
    )
}

/// The shared implementation behind both front-ends. `pipelined`
/// selects the production schedule: `true` overlaps `produce` with the
/// evaluation of the current generation (iterator-driven searches),
/// `false` runs `produce` strictly under the barrier (hook-driven
/// searches).
fn search_impl<T, C, E, W, P, S, F, M>(
    mut produce: P,
    pipelined: bool,
    config: &ParallelConfig,
    budget: &SearchBudget,
    scratch: &S,
    eval: &F,
    mut merge: M,
) -> Result<SearchStatus, E>
where
    T: Send,
    C: Send,
    E: Send,
    P: FnMut(u32, usize) -> Vec<T>,
    S: Fn() -> W + Sync,
    F: Fn(&mut W, u64, Vec<T>) -> Result<C, E> + Sync,
    M: FnMut(C) -> Result<(), E>,
{
    let threads = config.effective_threads().max(1);
    let chunk_size = config.chunk_size.max(1);
    // Global index of the next item — doubles as the dispatched-item
    // count the node budget is polled against. Passed into the closure
    // by reference so the budget poll can read it between calls.
    let mut next_base = 0u64;
    let mut produce_generation = |generation: u32, next_base: &mut u64| -> Vec<Slot<T, C, E>> {
        let width = config.generation_width(generation);
        let mut produced = produce(generation, width * chunk_size).into_iter();
        let mut slots = Vec::with_capacity(width);
        loop {
            let chunk: Vec<T> = produced.by_ref().take(chunk_size).collect();
            if chunk.is_empty() {
                break slots;
            }
            let base = *next_base;
            *next_base += chunk.len() as u64;
            slots.push(Slot {
                base,
                items: chunk,
                out: None,
            });
        }
    };
    let mut generation = 0u32;

    if threads == 1 {
        // Inline execution on the exact same generation schedule: chunks
        // of one generation are all evaluated before any is merged, so
        // they observe the same shared state as parallel workers would,
        // and the produce/merge interleaving matches the threaded
        // driver of the same `pipelined` mode.
        let mut workspace = scratch();
        if pipelined {
            let mut current = produce_generation(0, &mut next_base);
            let mut truncated = false;
            loop {
                if current.is_empty() {
                    return Ok(if truncated {
                        SearchStatus::Truncated
                    } else {
                        SearchStatus::Complete
                    });
                }
                // The deadline/cancellation re-poll before dispatching a
                // prefetched generation (see the threaded driver).
                if generation > 0 && (budget.out_of_time() || budget.cancelled()) {
                    return Ok(SearchStatus::Truncated);
                }
                for slot in &mut current {
                    let chunk = std::mem::take(&mut slot.items);
                    slot.out = Some(Ok(eval(&mut workspace, slot.base, chunk)));
                }
                // Prefetch under the same dispatched-item count the
                // threaded driver polls (everything through this
                // generation), before any of it merges.
                let next = if budget.is_exhausted(next_base) {
                    truncated = true;
                    Vec::new()
                } else {
                    produce_generation(generation + 1, &mut next_base)
                };
                for slot in current {
                    match slot.out.expect("chunk evaluated") {
                        Ok(Ok(c)) => merge(c)?,
                        Ok(Err(e)) => return Err(e),
                        Err(_) => unreachable!("inline evaluation does not catch panics"),
                    }
                }
                current = next;
                generation += 1;
            }
        }
        loop {
            if generation > 0 && budget.is_exhausted(next_base) {
                return Ok(SearchStatus::Truncated);
            }
            let mut gen = produce_generation(generation, &mut next_base);
            if gen.is_empty() {
                return Ok(SearchStatus::Complete);
            }
            for slot in &mut gen {
                let chunk = std::mem::take(&mut slot.items);
                slot.out = Some(Ok(eval(&mut workspace, slot.base, chunk)));
            }
            for slot in gen {
                match slot.out.expect("chunk evaluated") {
                    Ok(Ok(c)) => merge(c)?,
                    Ok(Err(e)) => return Err(e),
                    Err(_) => unreachable!("inline evaluation does not catch panics"),
                }
            }
            generation += 1;
        }
    }

    let slots: Mutex<Vec<Slot<T, C, E>>> = Mutex::new(Vec::new());
    let next_slot = AtomicUsize::new(0);
    let done = AtomicBool::new(false);
    // Two barriers per generation: `start` publishes the generation to
    // the workers, `finish` hands the filled slots back to the driver.
    let start = Barrier::new(threads + 1);
    let finish = Barrier::new(threads + 1);

    let mut status = SearchStatus::Complete;
    let mut first_error: Option<E> = None;
    let mut panic_payload: Option<Box<dyn std::any::Any + Send>> = None;

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut workspace = scratch();
                loop {
                    start.wait();
                    if done.load(Ordering::Acquire) {
                        return;
                    }
                    loop {
                        // Shared index-ordered chunk queue: each worker
                        // claims the next unclaimed chunk, so load
                        // imbalance inside a generation self-levels.
                        let index = next_slot.fetch_add(1, Ordering::Relaxed);
                        let work = {
                            let mut guard = slots.lock().unwrap_or_else(PoisonError::into_inner);
                            guard
                                .get_mut(index)
                                .map(|slot| (slot.base, std::mem::take(&mut slot.items)))
                        };
                        let Some((base, chunk)) = work else { break };
                        let out =
                            catch_unwind(AssertUnwindSafe(|| eval(&mut workspace, base, chunk)));
                        slots.lock().unwrap_or_else(PoisonError::into_inner)[index].out = Some(out);
                    }
                    finish.wait();
                }
            });
        }

        // The driver loop itself runs under catch_unwind: a panic in the
        // caller's `merge` or in the items iterator must still reach the
        // shutdown protocol below, or the workers would stay parked on
        // the start barrier forever and scope-join would deadlock.
        let driver = catch_unwind(AssertUnwindSafe(|| {
            if pipelined {
                let mut current = produce_generation(0, &mut next_base);
                let mut truncated = false;
                loop {
                    if current.is_empty() {
                        if truncated {
                            status = SearchStatus::Truncated;
                        }
                        break;
                    }
                    // A prefetched generation must not be dispatched once
                    // the deadline has passed or a cancellation landed —
                    // re-poll the *timing-dependent* budget parts here.
                    // The node budget is deliberately NOT re-polled: its
                    // dispatch decision was already taken (determin-
                    // istically) when this generation was produced, and
                    // re-counting it here would shift the truncation
                    // point relative to a non-pipelined run.
                    if generation > 0 && (budget.out_of_time() || budget.cancelled()) {
                        status = SearchStatus::Truncated;
                        break;
                    }
                    *slots.lock().unwrap_or_else(PoisonError::into_inner) = current;
                    next_slot.store(0, Ordering::Relaxed);
                    start.wait();
                    // Workers are evaluating this generation: produce
                    // the next one now. The production itself must not
                    // skip the finish barrier on panic, or the pool
                    // would deadlock — catch and re-raise after it.
                    let prefetch = if budget.is_exhausted(next_base) {
                        truncated = true;
                        Ok(Vec::new())
                    } else {
                        catch_unwind(AssertUnwindSafe(|| {
                            produce_generation(generation + 1, &mut next_base)
                        }))
                    };
                    finish.wait();
                    let gen =
                        std::mem::take(&mut *slots.lock().unwrap_or_else(PoisonError::into_inner));
                    for slot in gen {
                        collect(
                            slot.out.expect("generation fully evaluated"),
                            &mut merge,
                            &mut first_error,
                            &mut panic_payload,
                        );
                    }
                    match prefetch {
                        Ok(next) => current = next,
                        Err(payload) => {
                            if panic_payload.is_none() {
                                panic_payload = Some(payload);
                            }
                            break;
                        }
                    }
                    if first_error.is_some() || panic_payload.is_some() {
                        break;
                    }
                    generation += 1;
                }
            } else {
                loop {
                    if generation > 0 && budget.is_exhausted(next_base) {
                        status = SearchStatus::Truncated;
                        break;
                    }
                    let gen = produce_generation(generation, &mut next_base);
                    if gen.is_empty() {
                        break;
                    }
                    *slots.lock().unwrap_or_else(PoisonError::into_inner) = gen;
                    next_slot.store(0, Ordering::Relaxed);
                    start.wait();
                    finish.wait();
                    let gen =
                        std::mem::take(&mut *slots.lock().unwrap_or_else(PoisonError::into_inner));
                    for slot in gen {
                        collect(
                            slot.out.expect("generation fully evaluated"),
                            &mut merge,
                            &mut first_error,
                            &mut panic_payload,
                        );
                    }
                    if first_error.is_some() || panic_payload.is_some() {
                        break;
                    }
                    generation += 1;
                }
            }
        }));
        // Single shutdown point: every driver exit path — normal,
        // erroring or panicking — releases the workers exactly once.
        done.store(true, Ordering::Release);
        start.wait();
        if let Err(payload) = driver {
            if panic_payload.is_none() {
                panic_payload = Some(payload);
            }
        }
    });

    if let Some(payload) = panic_payload {
        resume_unwind(payload);
    }
    match first_error {
        Some(e) => Err(e),
        None => Ok(status),
    }
}

/// Folds one evaluated slot into the driver state: merge successful
/// results (in slot order, only while no failure is pending), keep the
/// lowest-indexed error, and capture the first worker panic.
fn collect<C, E>(
    out: std::thread::Result<Result<C, E>>,
    merge: &mut impl FnMut(C) -> Result<(), E>,
    first_error: &mut Option<E>,
    panic_payload: &mut Option<Box<dyn std::any::Any + Send>>,
) {
    match out {
        Ok(Ok(c)) => {
            if first_error.is_none() && panic_payload.is_none() {
                if let Err(e) = merge(c) {
                    *first_error = Some(e);
                }
            }
        }
        Ok(Err(e)) => {
            if first_error.is_none() && panic_payload.is_none() {
                *first_error = Some(e);
            }
        }
        Err(payload) => {
            if panic_payload.is_none() {
                *panic_payload = Some(payload);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SharedIncumbent;
    use std::time::Duration;

    /// Runs a bound-pruned "find the minimum" search and returns
    /// (winner value, winner index, number of items actually scored).
    fn pruned_min(values: &[u64], threads: usize) -> (u64, u64, u64) {
        let incumbent = SharedIncumbent::unbounded();
        let mut best: Option<(u64, u64)> = None;
        let mut scored = 0u64;
        let config = ParallelConfig {
            threads,
            chunk_size: 4,
            chunks_per_generation: 4,
        };
        let status = search_chunks(
            values.iter().copied(),
            &config,
            &SearchBudget::unlimited(),
            |base, chunk: Vec<u64>| -> Result<_, ()> {
                let tau = incumbent.get();
                let mut local_tau = tau;
                let mut local_best = None;
                let mut local_scored = 0u64;
                for (i, v) in chunk.into_iter().enumerate() {
                    // "Scoring" only happens under the bound, like a
                    // τ-pruned evaluation would.
                    if v < local_tau {
                        local_scored += 1;
                        local_tau = v;
                        local_best = Some((v, base + i as u64));
                    }
                }
                Ok((local_best, local_scored))
            },
            |(chunk_best, chunk_scored)| {
                scored += chunk_scored;
                if let Some((v, i)) = chunk_best {
                    incumbent.tighten(v);
                    if best.is_none_or(|(bv, _)| v < bv) {
                        best = Some((v, i));
                    }
                }
                Ok(())
            },
        )
        .unwrap();
        assert!(status.is_complete());
        let (v, i) = best.unwrap();
        (v, i, scored)
    }

    #[test]
    fn parallel_equals_sequential_bitwise() {
        let values: Vec<u64> = (0..500u64).map(|i| (i * 2_654_435_761) % 1000).collect();
        let reference = pruned_min(&values, 1);
        for threads in [2, 3, 8] {
            assert_eq!(pruned_min(&values, threads), reference, "threads {threads}");
        }
        // The winner is the *first* index achieving the minimum.
        let min = *values.iter().min().unwrap();
        let first = values.iter().position(|&v| v == min).unwrap() as u64;
        assert_eq!((reference.0, reference.1), (min, first));
    }

    #[test]
    fn merge_sees_chunks_in_index_order() {
        for threads in [1, 4] {
            let mut bases = Vec::new();
            let status = search_chunks(
                0..100u32,
                &ParallelConfig {
                    threads,
                    chunk_size: 7,
                    chunks_per_generation: 3,
                },
                &SearchBudget::unlimited(),
                |base, chunk: Vec<u32>| Ok::<_, ()>((base, chunk.len())),
                |(base, _)| {
                    bases.push(base);
                    Ok(())
                },
            )
            .unwrap();
            assert!(status.is_complete());
            let expected: Vec<u64> = (0..100).step_by(7).map(|b| b as u64).collect();
            assert_eq!(bases, expected, "threads {threads}");
        }
    }

    #[test]
    fn empty_input_completes_without_merging() {
        let status = search_chunks(
            std::iter::empty::<u32>(),
            &ParallelConfig::with_threads(4),
            &SearchBudget::unlimited(),
            |_, _| Ok::<_, ()>(()),
            |_| panic!("nothing to merge"),
        )
        .unwrap();
        assert!(status.is_complete());
    }

    #[test]
    fn expired_budget_still_runs_the_first_generation() {
        for threads in [1, 4] {
            let mut merged_items = 0usize;
            let status = search_chunks(
                0..1000u32,
                &ParallelConfig {
                    threads,
                    chunk_size: 8,
                    chunks_per_generation: 16,
                },
                &SearchBudget::time_limited(Duration::ZERO),
                |_, chunk: Vec<u32>| Ok::<_, ()>(chunk.len()),
                |n| {
                    merged_items += n;
                    Ok(())
                },
            )
            .unwrap();
            assert_eq!(status, SearchStatus::Truncated);
            // Generation 0 ramps up to a single chunk.
            assert_eq!(merged_items, 8, "threads {threads}");
        }
    }

    #[test]
    fn node_budget_truncation_is_deterministic() {
        let count = |threads: usize| {
            let mut merged = 0u64;
            let status = search_chunks(
                0..10_000u32,
                &ParallelConfig {
                    threads,
                    chunk_size: 32,
                    chunks_per_generation: 16,
                },
                &SearchBudget::node_limited(100),
                |_, chunk: Vec<u32>| Ok::<_, ()>(chunk.len() as u64),
                |n| {
                    merged += n;
                    Ok(())
                },
            )
            .unwrap();
            assert_eq!(status, SearchStatus::Truncated);
            merged
        };
        let reference = count(1);
        // Whole generations: 32 (gen 0) + 64 (gen 1) + 128 (gen 2) — the
        // budget trips after the generation crossing 100 items, exactly
        // as on the non-pipelined executor.
        assert_eq!(reference, 224);
        for threads in [2, 8] {
            assert_eq!(count(threads), reference, "threads {threads}");
        }
    }

    #[test]
    fn cancellation_stops_the_prefetched_generation_from_dispatching() {
        // The prefetch of generation g+1 happens while g evaluates, but
        // a cancellation landing before g+1 is published must win: the
        // produced items are dropped, not evaluated.
        use std::sync::atomic::AtomicU64;
        for threads in [1usize, 4] {
            let (budget, handle) = SearchBudget::unlimited().cancellable();
            let evaluated = AtomicU64::new(0);
            let mut merged = 0u64;
            let status = search_chunks(
                0..1000u32,
                &ParallelConfig {
                    threads,
                    chunk_size: 8,
                    chunks_per_generation: 16,
                },
                &budget,
                |_, chunk: Vec<u32>| {
                    evaluated.fetch_add(chunk.len() as u64, Ordering::Relaxed);
                    Ok::<_, ()>(chunk.len() as u64)
                },
                |n| {
                    merged += n;
                    // Trips during the merge of generation 0 — after
                    // generation 1 was already prefetched.
                    handle.cancel();
                    Ok(())
                },
            )
            .unwrap();
            assert_eq!(status, SearchStatus::Truncated, "threads {threads}");
            assert_eq!(merged, 8, "threads {threads}");
            assert_eq!(
                evaluated.load(Ordering::Relaxed),
                8,
                "threads {threads}: the prefetched generation must not run"
            );
        }
    }

    #[test]
    fn lowest_indexed_error_wins() {
        for threads in [1, 4] {
            let err = search_chunks(
                0..256u32,
                &ParallelConfig {
                    threads,
                    chunk_size: 8,
                    chunks_per_generation: 8,
                },
                &SearchBudget::unlimited(),
                |base, _chunk| {
                    if base >= 64 {
                        Err(base)
                    } else {
                        Ok(())
                    }
                },
                |()| Ok(()),
            )
            .unwrap_err();
            assert_eq!(err, 64, "threads {threads}");
        }
    }

    #[test]
    fn merge_error_aborts() {
        let err = search_chunks(
            0..100u32,
            &ParallelConfig::with_threads(4),
            &SearchBudget::unlimited(),
            |base, _chunk| Ok(base),
            |base| if base >= 32 { Err("stop") } else { Ok(()) },
        )
        .unwrap_err();
        assert_eq!(err, "stop");
    }

    #[test]
    fn worker_panics_propagate_after_clean_shutdown() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            search_chunks(
                0..100u32,
                &ParallelConfig::with_threads(4),
                &SearchBudget::unlimited(),
                |base, _chunk| -> Result<(), ()> {
                    if base >= 32 {
                        panic!("worker bug");
                    }
                    Ok(())
                },
                |()| Ok(()),
            )
        }));
        let payload = result.unwrap_err();
        let message = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(message, "worker bug");
    }

    #[test]
    fn merge_panics_propagate_instead_of_deadlocking() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            search_chunks(
                0..100u32,
                &ParallelConfig::with_threads(4),
                &SearchBudget::unlimited(),
                |base, _chunk| Ok::<_, ()>(base),
                |base| {
                    if base >= 32 {
                        panic!("merge bug");
                    }
                    Ok(())
                },
            )
        }));
        let payload = result.unwrap_err();
        let message = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(message, "merge bug");
    }

    #[test]
    fn producer_panics_propagate_instead_of_deadlocking() {
        let items = (0..100u32).inspect(|&i| {
            if i >= 40 {
                panic!("iterator bug");
            }
        });
        let result = catch_unwind(AssertUnwindSafe(|| {
            search_chunks(
                items,
                &ParallelConfig::with_threads(4),
                &SearchBudget::unlimited(),
                |_base, _chunk: Vec<u32>| Ok::<_, ()>(()),
                |()| Ok(()),
            )
        }));
        let payload = result.unwrap_err();
        let message = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(message, "iterator bug");
    }

    #[test]
    fn hook_producer_panics_propagate_instead_of_deadlocking() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            search_generations(
                |generation, capacity| {
                    if generation >= 2 {
                        panic!("hook bug");
                    }
                    vec![0u32; capacity]
                },
                &ParallelConfig::with_threads(4),
                &SearchBudget::unlimited(),
                |_base, _chunk: Vec<u32>| Ok::<_, ()>(()),
                |()| Ok(()),
            )
        }));
        let payload = result.unwrap_err();
        let message = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(message, "hook bug");
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        let config = ParallelConfig::with_threads(0);
        assert!(config.effective_threads() >= 1);
    }

    #[test]
    fn absurd_thread_counts_are_clamped_to_usable_parallelism() {
        let config = ParallelConfig::with_threads(usize::MAX);
        assert_eq!(
            config.effective_threads(),
            config.chunks_per_generation,
            "workers beyond the generation width can never be busy"
        );
        // And the search still runs (and stays deterministic).
        let mut sum = 0u64;
        search_chunks(
            0..100u64,
            &ParallelConfig {
                threads: 1_000_000,
                chunk_size: 8,
                chunks_per_generation: 4,
            },
            &SearchBudget::unlimited(),
            |_base, chunk: Vec<u64>| Ok::<_, ()>(chunk.iter().sum::<u64>()),
            |s| {
                sum += s;
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(sum, 4950);
    }

    #[test]
    fn scratch_is_per_worker_and_reused_across_generations() {
        // Each worker's scratch counts the chunks it evaluated; the
        // counts must sum to the total chunk count (every chunk ran on
        // exactly one scratch), and with threads = 1 a single scratch
        // sees everything — proof the value survives generations.
        for threads in [1usize, 4] {
            let mut per_chunk_counts = Vec::new();
            let status = search_chunks_with(
                0..96u32,
                &ParallelConfig {
                    threads,
                    chunk_size: 8,
                    chunks_per_generation: 4,
                },
                &SearchBudget::unlimited(),
                || 0u64,
                |seen: &mut u64, base, _chunk: Vec<u32>| {
                    *seen += 1;
                    Ok::<_, ()>((base, *seen))
                },
                |(base, seen)| {
                    per_chunk_counts.push((base, seen));
                    Ok(())
                },
            )
            .unwrap();
            assert!(status.is_complete());
            assert_eq!(per_chunk_counts.len(), 12, "threads {threads}");
            if threads == 1 {
                // One scratch evaluates every chunk in order.
                let counts: Vec<u64> = per_chunk_counts.iter().map(|&(_, s)| s).collect();
                assert_eq!(counts, (1..=12).collect::<Vec<u64>>());
            }
            // Per-worker counters never exceed the chunk total and are
            // strictly positive.
            assert!(per_chunk_counts.iter().all(|&(_, s)| (1..=12).contains(&s)));
        }
    }

    #[test]
    fn pipelined_production_overlaps_evaluation() {
        // The iterator records how far production has advanced when each
        // chunk is evaluated. With pipelining, the items of generation
        // g + 1 are produced before generation g merges — visible here
        // as production having advanced past the evaluated chunk's own
        // generation by merge time at threads = 1 (deterministic order).
        use std::sync::atomic::AtomicU64;
        let produced = AtomicU64::new(0);
        let mut merged: Vec<(u64, u64)> = Vec::new();
        let status = search_chunks(
            (0..48u64).inspect(|_| {
                produced.fetch_add(1, Ordering::Relaxed);
            }),
            &ParallelConfig {
                threads: 1,
                chunk_size: 4,
                chunks_per_generation: 2,
            },
            &SearchBudget::unlimited(),
            |base, chunk: Vec<u64>| Ok::<_, ()>((base, chunk.len() as u64)),
            |(base, len)| {
                merged.push((base, produced.load(Ordering::Relaxed)));
                let _ = len;
                Ok(())
            },
        )
        .unwrap();
        assert!(status.is_complete());
        // When chunk at base 0 (generation 0) merges, generation 1's
        // items (8 more) must already be produced: 4 + 8 = 12.
        assert_eq!(merged.first(), Some(&(0, 12)));
    }

    #[test]
    fn generation_hook_sees_the_ramp() {
        // The hook runs once per generation with the ramped capacity;
        // returning fewer items than the capacity keeps the search going.
        let mut calls: Vec<(u32, usize)> = Vec::new();
        let mut merged: Vec<u64> = Vec::new();
        let mut remaining = 10u32;
        let status = search_generations(
            |generation, capacity| {
                calls.push((generation, capacity));
                let take = remaining.min(3);
                remaining -= take;
                (0..take).collect::<Vec<u32>>()
            },
            &ParallelConfig {
                threads: 1,
                chunk_size: 2,
                chunks_per_generation: 4,
            },
            &SearchBudget::unlimited(),
            |base, chunk: Vec<u32>| Ok::<_, ()>(base + chunk.len() as u64),
            |v| {
                merged.push(v);
                Ok(())
            },
        )
        .unwrap();
        assert!(status.is_complete());
        // Capacities follow the exponential ramp × chunk_size: 1×2, 2×2,
        // 4×2 (cap), …; the final call finds nothing and ends the search.
        assert_eq!(calls, vec![(0, 2), (1, 4), (2, 8), (3, 8), (4, 8)]);
        // 3 items per call → chunks (2,1), (2,1), (2,1), (1): bases
        // advance across generations.
        assert_eq!(merged, vec![2, 3, 5, 6, 8, 9, 10]);
    }

    #[test]
    fn dynamic_production_is_thread_count_invariant() {
        // A hook that "admits" new work depending on the generation index
        // (the live-queue pattern) must still merge bit-identically for
        // every thread count.
        let run = |threads: usize| {
            let mut queue: Vec<u64> = (0..40).collect();
            let mut merged = Vec::new();
            let status = search_generations(
                |generation, capacity| {
                    if generation == 2 {
                        // Mid-run submission, admitted at the barrier.
                        queue.extend(1000..1010);
                    }
                    let take = capacity.min(queue.len());
                    queue.drain(..take).collect::<Vec<u64>>()
                },
                &ParallelConfig {
                    threads,
                    chunk_size: 4,
                    chunks_per_generation: 4,
                },
                &SearchBudget::unlimited(),
                |base, chunk: Vec<u64>| Ok::<_, ()>((base, chunk)),
                |(base, chunk)| {
                    merged.push((base, chunk));
                    Ok(())
                },
            )
            .unwrap();
            assert!(status.is_complete());
            merged
        };
        let reference = run(1);
        assert_eq!(reference.iter().map(|(_, c)| c.len()).sum::<usize>(), 50);
        for threads in [2, 8] {
            assert_eq!(run(threads), reference, "threads {threads}");
        }
    }

    #[test]
    fn hook_sees_merged_state_of_the_previous_generation() {
        // The hook contract: production at generation g observes every
        // merge of generations 0..g. A pipelined producer could not make
        // this promise — this test pins the hook variant to it.
        for threads in [1usize, 4] {
            let merged_total = std::cell::Cell::new(0u64);
            let mut observed: Vec<u64> = Vec::new();
            let mut rounds = 0u32;
            let status = search_generations(
                |_generation, _capacity| {
                    observed.push(merged_total.get());
                    rounds += 1;
                    if rounds > 3 {
                        Vec::new()
                    } else {
                        vec![1u64; 4]
                    }
                },
                &ParallelConfig {
                    threads,
                    chunk_size: 2,
                    chunks_per_generation: 4,
                },
                &SearchBudget::unlimited(),
                |_base, chunk: Vec<u64>| Ok::<_, ()>(chunk.iter().sum::<u64>()),
                |s| {
                    merged_total.set(merged_total.get() + s);
                    Ok(())
                },
            )
            .unwrap();
            assert!(status.is_complete());
            // Each call sees all previous generations fully merged.
            assert_eq!(observed, vec![0, 4, 8, 12], "threads {threads}");
        }
    }

    #[test]
    fn hook_budget_is_polled_before_producing() {
        // Once the budget expires, the hook must not be consulted again —
        // a blocking hook would otherwise hang a truncated search.
        let mut calls = 0u32;
        let status = search_generations(
            |_, capacity| {
                calls += 1;
                vec![0u32; capacity]
            },
            &ParallelConfig::with_threads(4),
            &SearchBudget::time_limited(Duration::ZERO),
            |_, _chunk| Ok::<_, ()>(()),
            |()| Ok(()),
        )
        .unwrap();
        assert_eq!(status, SearchStatus::Truncated);
        assert_eq!(calls, 1, "only the always-run first generation produced");
    }

    #[test]
    fn generation_ramp_is_capped() {
        let config = ParallelConfig::default();
        assert_eq!(config.generation_width(0), 1);
        assert_eq!(config.generation_width(1), 2);
        assert_eq!(config.generation_width(3), 8);
        assert_eq!(config.generation_width(10), 16);
        assert_eq!(config.generation_width(u32::MAX), 16);
    }
}
