use serde::{Deserialize, Serialize};
use tamopt_soc::Soc;

use crate::{design_wrapper, WrapperError};

/// Precomputed core testing times `T_i(w)` for every core of an SOC and
/// every TAM width `1..=max_width`.
///
/// Every optimization layer of the workspace (the `Core_assign`
/// heuristic, the exact solvers, `Partition_evaluate`) consumes wrapper
/// results only through this table, mirroring the paper's structure
/// where `Design_wrapper` is invoked once per (core, width) pair
/// (Figure 1, line 6).
///
/// # Example
///
/// ```
/// use tamopt_soc::benchmarks;
/// use tamopt_wrapper::TimeTable;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let soc = benchmarks::d695();
/// let table = TimeTable::new(&soc, 64)?;
/// // Wider TAMs never test slower.
/// assert!(table.time(0, 64) <= table.time(0, 16));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeTable {
    /// `times[core][width - 1]`.
    times: Vec<Vec<u64>>,
    max_width: u32,
}

impl TimeTable {
    /// Builds the table by running wrapper design for every core at every
    /// width `1..=max_width`.
    ///
    /// # Errors
    ///
    /// [`WrapperError::ZeroWidth`] if `max_width == 0`.
    pub fn new(soc: &Soc, max_width: u32) -> Result<Self, WrapperError> {
        if max_width == 0 {
            return Err(WrapperError::ZeroWidth);
        }
        let times = soc
            .iter()
            .map(|core| {
                (1..=max_width)
                    .map(|w| design_wrapper(core, w).map(|d| d.test_time()))
                    .collect::<Result<Vec<_>, _>>()
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(TimeTable { times, max_width })
    }

    /// Number of cores covered.
    pub fn num_cores(&self) -> usize {
        self.times.len()
    }

    /// Largest width covered.
    pub fn max_width(&self) -> u32 {
        self.max_width
    }

    /// Testing time of core `core` on a TAM of width `width`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range or `width` is `0` or greater
    /// than [`max_width`](TimeTable::max_width).
    pub fn time(&self, core: usize, width: u32) -> u64 {
        assert!(
            width >= 1 && width <= self.max_width,
            "width {width} out of range"
        );
        self.times[core][(width - 1) as usize]
    }

    /// The whole row of testing times for one core (`width = index + 1`).
    pub fn row(&self, core: usize) -> &[u64] {
        &self.times[core]
    }

    /// Minimum achievable testing time for a core within the table's
    /// width range (its saturation time).
    pub fn min_time(&self, core: usize) -> u64 {
        *self.times[core].last().expect("max_width >= 1")
    }

    /// The **effective width** of every width `1..=max_width`: entry `w`
    /// is the smallest width whose column of per-core times equals
    /// `w`'s (entry 0 is unused and holds 0).
    ///
    /// This is the table-level face of the Pareto staircase
    /// ([`crate::pareto`]): once every core has passed its saturation
    /// point, adding wires changes nothing, so distinct widths collapse
    /// onto one effective width and produce *identical* cost columns.
    /// The partition scan keys its per-worker matrix memo on these
    /// values — partitions differing only in past-saturation parts
    /// share one cached matrix instead of rebuilding it.
    ///
    /// The map is non-decreasing (`w1 <= w2` implies `eff(w1) <=
    /// eff(w2)`), and `eff(w) <= w` with equality exactly when `w`'s
    /// column differs from `w - 1`'s.
    pub fn effective_widths(&self) -> Vec<u32> {
        let mut effective = vec![0u32; (self.max_width + 1) as usize];
        effective[1] = 1;
        for w in 2..=self.max_width {
            let index = (w - 1) as usize;
            let same_column = self.times.iter().all(|row| row[index] == row[index - 1]);
            effective[w as usize] = if same_column {
                effective[(w - 1) as usize]
            } else {
                w
            };
        }
        effective
    }

    /// Builds a table directly from an externally supplied cost matrix
    /// (`times[core][width - 1]`). Used for tables given verbatim, such
    /// as the paper's Figure 2 example.
    ///
    /// # Panics
    ///
    /// Panics if rows are empty or of unequal lengths.
    pub fn from_matrix(times: Vec<Vec<u64>>) -> Self {
        let max_width = times.first().map_or(0, |r| r.len()) as u32;
        assert!(
            max_width >= 1,
            "cost matrix must have at least one width column"
        );
        assert!(
            times.iter().all(|r| r.len() as u32 == max_width),
            "cost matrix rows must have equal lengths"
        );
        TimeTable { times, max_width }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamopt_soc::benchmarks;

    #[test]
    fn zero_width_rejected() {
        let soc = benchmarks::d695();
        assert_eq!(TimeTable::new(&soc, 0), Err(WrapperError::ZeroWidth));
    }

    #[test]
    fn covers_all_cores_and_widths() {
        let soc = benchmarks::d695();
        let t = TimeTable::new(&soc, 16).unwrap();
        assert_eq!(t.num_cores(), 10);
        assert_eq!(t.max_width(), 16);
        assert_eq!(t.row(3).len(), 16);
    }

    #[test]
    fn rows_non_increasing() {
        let soc = benchmarks::d695();
        let t = TimeTable::new(&soc, 32).unwrap();
        for core in 0..t.num_cores() {
            let row = t.row(core);
            assert!(row.windows(2).all(|w| w[0] >= w[1]), "core {core}");
        }
    }

    #[test]
    fn min_time_is_last_column() {
        let soc = benchmarks::d695();
        let t = TimeTable::new(&soc, 24).unwrap();
        for core in 0..t.num_cores() {
            assert_eq!(t.min_time(core), t.time(core, 24));
        }
    }

    #[test]
    fn effective_widths_canonicalize_identical_columns() {
        let soc = benchmarks::d695();
        let t = TimeTable::new(&soc, 64).unwrap();
        let eff = t.effective_widths();
        assert_eq!(eff.len(), 65);
        assert_eq!(eff[1], 1);
        for w in 1..=64u32 {
            let e = eff[w as usize];
            assert!(e >= 1 && e <= w, "eff({w}) = {e} out of range");
            // The effective width's column is identical to w's…
            for core in 0..t.num_cores() {
                assert_eq!(t.time(core, e), t.time(core, w), "core {core} width {w}");
            }
            // …and it is the smallest such width.
            if e > 1 {
                assert!(
                    (0..t.num_cores()).any(|c| t.time(c, e - 1) != t.time(c, e)),
                    "eff({w}) = {e} is not minimal"
                );
            }
        }
        // Monotone non-decreasing.
        assert!(eff[1..].windows(2).all(|p| p[0] <= p[1]));
        // d695 saturates well before 64 wires: the tail must collapse.
        assert!(eff[64] < 64, "no collapse at all would be surprising");
    }

    #[test]
    fn from_matrix_roundtrip() {
        let (_, times) = benchmarks::figure2_cost_table();
        // Figure 2 indexes TAMs, not widths; as a matrix the columns are
        // simply positions 1..=3.
        let t = TimeTable::from_matrix(times.clone());
        assert_eq!(t.num_cores(), 5);
        assert_eq!(t.time(0, 2), times[0][1]);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn from_matrix_rejects_ragged() {
        let _ = TimeTable::from_matrix(vec![vec![1, 2], vec![3]]);
    }

    #[test]
    #[should_panic(expected = "width column")]
    fn from_matrix_rejects_empty_rows() {
        let _ = TimeTable::from_matrix(vec![vec![], vec![]]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn time_panics_out_of_range() {
        let soc = benchmarks::d695();
        let t = TimeTable::new(&soc, 8).unwrap();
        let _ = t.time(0, 9);
    }
}
