//! Pareto-optimal TAM width analysis.
//!
//! A core's testing time `T(w)` is a non-increasing staircase of the TAM
//! width `w`: beyond certain widths, extra wires are *idle* and buy no
//! time. The paper's key observation (Section 1) is that multiple TAMs
//! of different widths let more cores sit at a Pareto point of their own
//! staircase, wasting fewer wires — this module exposes that staircase.
//!
//! It also exposes the *bottleneck lower bound*: the SOC testing time can
//! never drop below the fastest possible time of its slowest core, which
//! explains the saturation the paper observes on p31108 (testing time
//! stuck at 544579 cycles for `W ≥ 40`, Tables 11–13).

use tamopt_soc::{Core, Soc};

use crate::{design_wrapper, TimeTable, WrapperError};

/// One step of a core's testing-time staircase: the smallest width
/// achieving a given time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParetoPoint {
    /// TAM width of this step (the smallest width with this time).
    pub width: u32,
    /// Core testing time at this width, in clock cycles.
    pub time: u64,
}

/// Computes the Pareto-optimal width/time staircase of `core` for widths
/// `1..=max_width`: each returned point is the smallest width achieving a
/// strictly lower testing time than the previous point.
///
/// # Errors
///
/// [`WrapperError::ZeroWidth`] if `max_width == 0`.
///
/// # Example
///
/// ```
/// use tamopt_soc::Core;
/// use tamopt_wrapper::pareto::pareto_widths;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let core = Core::builder("c").inputs(8).outputs(8).patterns(10).build()?;
/// let steps = pareto_widths(&core, 16)?;
/// assert_eq!(steps.first().map(|p| p.width), Some(1));
/// // Times strictly decrease along the staircase.
/// assert!(steps.windows(2).all(|s| s[0].time > s[1].time));
/// # Ok(())
/// # }
/// ```
pub fn pareto_widths(core: &Core, max_width: u32) -> Result<Vec<ParetoPoint>, WrapperError> {
    if max_width == 0 {
        return Err(WrapperError::ZeroWidth);
    }
    let mut points = Vec::new();
    let mut last_time = u64::MAX;
    for w in 1..=max_width {
        let t = design_wrapper(core, w)?.test_time();
        if t < last_time {
            points.push(ParetoPoint { width: w, time: t });
            last_time = t;
        }
    }
    Ok(points)
}

/// The smallest width at which `core`'s testing time saturates within
/// `1..=max_width` (adding wires beyond it buys nothing in that range).
///
/// # Errors
///
/// [`WrapperError::ZeroWidth`] if `max_width == 0`.
pub fn saturation_width(core: &Core, max_width: u32) -> Result<u32, WrapperError> {
    Ok(pareto_widths(core, max_width)?
        .last()
        .expect("staircase is non-empty")
        .width)
}

/// Lower bound on the SOC testing time for any architecture of total
/// width `total_width`: no core can be tested faster than with all
/// `total_width` wires to itself, and TAMs run in parallel, so
///
/// ```text
/// T_soc ≥ max_cores T_core(total_width)
/// ```
///
/// This is the bound the paper's p31108 hits from `W = 40` on
/// (the 544579-cycle plateau of its Tables 11–13).
///
/// # Errors
///
/// [`WrapperError::ZeroWidth`] if `total_width == 0`.
pub fn bottleneck_lower_bound(soc: &Soc, total_width: u32) -> Result<u64, WrapperError> {
    if total_width == 0 {
        return Err(WrapperError::ZeroWidth);
    }
    let mut bound = 0;
    for core in soc {
        bound = bound.max(design_wrapper(core, total_width)?.test_time());
    }
    Ok(bound)
}

/// Index and saturated testing time of the SOC's *bottleneck core*: the
/// core whose best-possible time at `total_width` is largest.
///
/// # Errors
///
/// [`WrapperError::ZeroWidth`] if `total_width == 0`.
pub fn bottleneck_core(soc: &Soc, total_width: u32) -> Result<(usize, u64), WrapperError> {
    if total_width == 0 {
        return Err(WrapperError::ZeroWidth);
    }
    let mut best = (0, 0);
    for (i, core) in soc.iter().enumerate() {
        let t = design_wrapper(core, total_width)?.test_time();
        if t > best.1 {
            best = (i, t);
        }
    }
    Ok(best)
}

/// Counts the idle wires of assigning `core` to a TAM of width `width`:
/// wires beyond the core's smallest width achieving the same time.
///
/// # Errors
///
/// [`WrapperError::ZeroWidth`] if `width == 0`.
pub fn idle_wires(core: &Core, width: u32) -> Result<u32, WrapperError> {
    let target = design_wrapper(core, width)?.test_time();
    for w in 1..=width {
        if design_wrapper(core, w)?.test_time() == target {
            return Ok(width - w);
        }
    }
    Ok(0)
}

/// Restates [`bottleneck_lower_bound`] on a precomputed [`TimeTable`]
/// whose `max_width` is the SOC total width.
pub fn bottleneck_from_table(table: &TimeTable) -> u64 {
    (0..table.num_cores())
        .map(|c| table.min_time(c))
        .max()
        .unwrap_or(0)
}

/// [`bottleneck_lower_bound`] at an *intermediate* width of a precomputed
/// [`TimeTable`] — the per-width bound column of a frontier sweep, read
/// without re-designing any wrapper.
///
/// # Panics
///
/// Panics if `width` is `0` or greater than the table's
/// [`max_width`](TimeTable::max_width).
pub fn bottleneck_at_width(table: &TimeTable, width: u32) -> u64 {
    (0..table.num_cores())
        .map(|c| table.time(c, width))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamopt_soc::benchmarks;

    #[test]
    fn staircase_strictly_decreases() {
        for core in benchmarks::d695().cores() {
            let steps = pareto_widths(core, 64).unwrap();
            assert!(!steps.is_empty());
            assert_eq!(steps[0].width, 1);
            assert!(steps
                .windows(2)
                .all(|s| s[0].time > s[1].time && s[0].width < s[1].width));
        }
    }

    #[test]
    fn saturation_width_reaches_min_time() {
        let soc = benchmarks::d695();
        let table = TimeTable::new(&soc, 64).unwrap();
        for (i, core) in soc.iter().enumerate() {
            let sat = saturation_width(core, 64).unwrap();
            assert_eq!(
                design_wrapper(core, sat).unwrap().test_time(),
                table.min_time(i)
            );
        }
    }

    #[test]
    fn bottleneck_bound_matches_table() {
        let soc = benchmarks::d695();
        let table = TimeTable::new(&soc, 48).unwrap();
        assert_eq!(
            bottleneck_lower_bound(&soc, 48).unwrap(),
            bottleneck_from_table(&table)
        );
    }

    #[test]
    fn per_width_bound_matches_a_fresh_design() {
        let soc = benchmarks::d695();
        let table = TimeTable::new(&soc, 48).unwrap();
        for w in (8..=48).step_by(8) {
            assert_eq!(
                bottleneck_at_width(&table, w),
                bottleneck_lower_bound(&soc, w).unwrap(),
                "W={w}"
            );
        }
        assert_eq!(
            bottleneck_at_width(&table, 48),
            bottleneck_from_table(&table)
        );
    }

    #[test]
    fn bottleneck_core_is_argmax() {
        let soc = benchmarks::p31108();
        let (idx, t) = bottleneck_core(&soc, 64).unwrap();
        assert_eq!(t, bottleneck_lower_bound(&soc, 64).unwrap());
        assert!(idx < soc.num_cores());
    }

    #[test]
    fn p31108_has_a_hard_bottleneck() {
        // The stand-in reproduces the paper's plateau phenomenon: the
        // bottleneck bound stops improving well before W = 64.
        let soc = benchmarks::p31108();
        let b40 = bottleneck_lower_bound(&soc, 40).unwrap();
        let b64 = bottleneck_lower_bound(&soc, 64).unwrap();
        assert!(b64 > 0);
        let gap = (b40 - b64) as f64 / b64 as f64;
        assert!(gap < 0.25, "bound still falling steeply: {b40} -> {b64}");
    }

    #[test]
    fn effective_widths_are_exactly_the_union_of_pareto_points() {
        // `TimeTable::effective_widths` is the table-level face of the
        // staircase: a width is its own effective width iff some core
        // steps down there, i.e. iff it is a Pareto point of at least
        // one core.
        let soc = benchmarks::d695();
        let table = TimeTable::new(&soc, 48).unwrap();
        let eff = table.effective_widths();
        let mut pareto_points = std::collections::HashSet::new();
        for core in soc.cores() {
            for p in pareto_widths(core, 48).unwrap() {
                pareto_points.insert(p.width);
            }
        }
        for w in 1..=48u32 {
            assert_eq!(
                eff[w as usize] == w,
                pareto_points.contains(&w),
                "width {w}"
            );
        }
    }

    #[test]
    fn idle_wires_zero_at_pareto_points() {
        let core = &benchmarks::d695().cores()[3].clone();
        for p in pareto_widths(core, 32).unwrap() {
            assert_eq!(idle_wires(core, p.width).unwrap(), 0, "width {}", p.width);
        }
    }

    #[test]
    fn idle_wires_positive_off_pareto() {
        // A 2-terminal memory core wastes every wire beyond 2.
        let core = tamopt_soc::Core::builder("m")
            .inputs(2)
            .outputs(2)
            .patterns(5)
            .build()
            .unwrap();
        assert_eq!(idle_wires(&core, 8).unwrap(), 6);
    }

    #[test]
    fn zero_width_errors() {
        let soc = benchmarks::d695();
        let core = &soc.cores()[0];
        assert!(pareto_widths(core, 0).is_err());
        assert!(saturation_width(core, 0).is_err());
        assert!(bottleneck_lower_bound(&soc, 0).is_err());
        assert!(bottleneck_core(&soc, 0).is_err());
        assert!(idle_wires(core, 0).is_err());
    }
}
