use serde::{Deserialize, Serialize};
use tamopt_soc::Core;

use crate::{testing_time, WrapperError};

/// One wrapper scan chain: the internal scan chains threaded through it
/// plus the wrapper input/output cells placed on it.
///
/// On the scan-in path a pattern shifts through the chain's input cells
/// and then its scan cells (`scan_in_length`); on the scan-out path the
/// response shifts through the scan cells and then the output cells
/// (`scan_out_length`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChainLayout {
    /// Lengths of the internal scan chains threaded through this wrapper
    /// chain, in threading order.
    pub scan_chains: Vec<u32>,
    /// Wrapper input cells placed upstream of the scan cells.
    pub input_cells: u32,
    /// Wrapper output cells placed downstream of the scan cells.
    pub output_cells: u32,
}

impl ChainLayout {
    /// Total internal scan cells on this wrapper chain.
    pub fn scan_cells(&self) -> u64 {
        self.scan_chains.iter().map(|&l| u64::from(l)).sum()
    }

    /// Scan-in path length (input cells + scan cells).
    pub fn scan_in_length(&self) -> u64 {
        u64::from(self.input_cells) + self.scan_cells()
    }

    /// Scan-out path length (scan cells + output cells).
    pub fn scan_out_length(&self) -> u64 {
        self.scan_cells() + u64::from(self.output_cells)
    }

    /// Whether this chain carries anything at all.
    pub fn is_empty(&self) -> bool {
        self.scan_chains.is_empty() && self.input_cells == 0 && self.output_cells == 0
    }
}

/// The result of wrapper design for one core at one TAM width —
/// problem *P_W*.
///
/// Produced by [`design_wrapper`]. The design's two figures of merit are
/// [`test_time`](WrapperDesign::test_time) (priority 1 of the paper's
/// `Design_wrapper`) and [`used_width`](WrapperDesign::used_width)
/// (priority 2: TAM wires that actually carry a non-empty chain).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WrapperDesign {
    width: u32,
    chains: Vec<ChainLayout>,
    scan_in: u64,
    scan_out: u64,
    patterns: u64,
    test_time: u64,
}

impl WrapperDesign {
    /// The TAM width the wrapper was designed for.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The wrapper scan chains (one per TAM wire; trailing chains may be
    /// empty when the core cannot exploit the full width).
    pub fn chains(&self) -> &[ChainLayout] {
        &self.chains
    }

    /// The wrapper's scan-in length `s_i` (longest scan-in path).
    pub fn scan_in_length(&self) -> u64 {
        self.scan_in
    }

    /// The wrapper's scan-out length `s_o` (longest scan-out path).
    pub fn scan_out_length(&self) -> u64 {
        self.scan_out
    }

    /// Number of TAM wires actually used (non-empty chains).
    pub fn used_width(&self) -> u32 {
        self.chains.iter().filter(|c| !c.is_empty()).count() as u32
    }

    /// Core testing time in clock cycles,
    /// `(1 + max(s_i, s_o))·p + min(s_i, s_o)`.
    pub fn test_time(&self) -> u64 {
        self.test_time
    }
}

/// Designs a test wrapper for `core` at TAM width `width` — the
/// `Design_wrapper` algorithm of the paper's reference [8].
///
/// The algorithm:
///
/// 1. partitions the core-internal scan chains over `k` wrapper chains
///    with Best-Fit-Decreasing bin packing (longest chain to the
///    currently shortest wrapper chain), trying every `k ≤ min(width, s)`
///    and keeping the best — this realizes the published heuristic's
///    "built-in reluctance to create a new wrapper scan chain";
/// 2. distributes the wrapper input (output) cells over all `width`
///    chains by exact waterfilling, minimizing the maximum scan-in
///    (scan-out) path length;
/// 3. scores each candidate with the testing-time formula and prefers,
///    at equal time, the design using fewer TAM wires.
///
/// The returned design's testing time is non-increasing in `width`.
///
/// # Errors
///
/// [`WrapperError::ZeroWidth`] if `width == 0`.
///
/// # Example
///
/// ```
/// use tamopt_soc::Core;
/// use tamopt_wrapper::design_wrapper;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A memory core: terminals only.
/// let mem = Core::builder("m").inputs(40).outputs(39).patterns(1000).build()?;
/// let d = design_wrapper(&mem, 10)?;
/// // s_i = ceil(40/10), s_o = ceil(39/10).
/// assert_eq!(d.scan_in_length(), 4);
/// assert_eq!(d.scan_out_length(), 4);
/// assert_eq!(d.test_time(), (1 + 4) * 1000 + 4);
/// # Ok(())
/// # }
/// ```
pub fn design_wrapper(core: &Core, width: u32) -> Result<WrapperDesign, WrapperError> {
    if width == 0 {
        return Err(WrapperError::ZeroWidth);
    }
    let scan_count = core.scan_chains().len() as u32;
    let k_max = scan_count.min(width);
    let mut best: Option<WrapperDesign> = None;
    // k = 0 covers scan-less cores; for scan cores every bin count
    // 1..=k_max is tried and the fastest (then narrowest) design kept.
    let k_range = if k_max == 0 { 0..=0 } else { 1..=k_max };
    for k in k_range {
        let candidate = design_with_scan_bins(core, width, k);
        let better = match &best {
            None => true,
            Some(b) => {
                (candidate.test_time, candidate.used_width()) < (b.test_time, b.used_width())
            }
        };
        if better {
            best = Some(candidate);
        }
    }
    Ok(best.expect("at least one candidate is always produced"))
}

/// Builds one candidate design: internal scan chains packed into exactly
/// `scan_bins` wrapper chains, wrapper cells waterfilled over all
/// `width` chains.
fn design_with_scan_bins(core: &Core, width: u32, scan_bins: u32) -> WrapperDesign {
    let width_us = width as usize;
    let mut chains: Vec<ChainLayout> = (0..width_us)
        .map(|_| ChainLayout {
            scan_chains: Vec::new(),
            input_cells: 0,
            output_cells: 0,
        })
        .collect();

    if scan_bins > 0 {
        // Best-Fit-Decreasing: longest internal chain first, into the
        // wrapper chain with the least scan load so far.
        let mut order: Vec<u32> = core.scan_chains().to_vec();
        order.sort_unstable_by(|a, b| b.cmp(a));
        let mut loads = vec![0u64; scan_bins as usize];
        for len in order {
            let bin = (0..loads.len())
                .min_by_key(|&i| (loads[i], i))
                .expect("scan_bins > 0");
            loads[bin] += u64::from(len);
            chains[bin].scan_chains.push(len);
        }
    }

    let scan_loads: Vec<u64> = chains.iter().map(ChainLayout::scan_cells).collect();
    let input_fill = waterfill(&scan_loads, u64::from(core.input_cells()));
    let output_fill = waterfill(&scan_loads, u64::from(core.output_cells()));
    for (i, chain) in chains.iter_mut().enumerate() {
        chain.input_cells = input_fill[i] as u32;
        chain.output_cells = output_fill[i] as u32;
    }

    let scan_in = chains
        .iter()
        .map(ChainLayout::scan_in_length)
        .max()
        .unwrap_or(0);
    let scan_out = chains
        .iter()
        .map(ChainLayout::scan_out_length)
        .max()
        .unwrap_or(0);
    let test_time = testing_time(scan_in, scan_out, core.patterns());
    WrapperDesign {
        width,
        chains,
        scan_in,
        scan_out,
        patterns: core.patterns(),
        test_time,
    }
}

/// Distributes `cells` wrapper cells over chains with fixed base loads
/// `bases`, minimizing the maximum of `base + cells_assigned`. Returns
/// the per-chain cell counts.
///
/// Exact integer waterfilling: binary-search the lowest level `L` such
/// that `Σ max(0, L - base_i) ≥ cells`, fill every chain up to `L`, then
/// drain the surplus from the *last* chains so that as few chains as
/// possible are touched (the "reluctance" tie-break).
fn waterfill(bases: &[u64], cells: u64) -> Vec<u64> {
    if cells == 0 || bases.is_empty() {
        return vec![0; bases.len()];
    }
    let max_base = bases.iter().copied().max().expect("non-empty");
    let mut lo = 0u64;
    let mut hi = max_base + cells; // always sufficient
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let capacity: u64 = bases.iter().map(|&b| mid.saturating_sub(b)).sum();
        if capacity >= cells {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let level = lo;
    let mut fill: Vec<u64> = bases.iter().map(|&b| level.saturating_sub(b)).collect();
    let mut surplus: u64 = fill.iter().sum::<u64>() - cells;
    for f in fill.iter_mut().rev() {
        if surplus == 0 {
            break;
        }
        let take = (*f).min(surplus);
        *f -= take;
        surplus -= take;
    }
    fill
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamopt_soc::benchmarks;

    fn mem_core(inputs: u32, outputs: u32, patterns: u64) -> Core {
        Core::builder("m")
            .inputs(inputs)
            .outputs(outputs)
            .patterns(patterns)
            .build()
            .unwrap()
    }

    #[test]
    fn zero_width_is_an_error() {
        let c = mem_core(1, 1, 1);
        assert_eq!(design_wrapper(&c, 0), Err(WrapperError::ZeroWidth));
    }

    #[test]
    fn waterfill_exact_levels() {
        assert_eq!(waterfill(&[], 5), Vec::<u64>::new());
        assert_eq!(waterfill(&[0, 0, 0], 0), vec![0, 0, 0]);
        // 7 cells over 3 empty chains -> level 3 with surplus drained
        // from the back: [3, 3, 1].
        assert_eq!(waterfill(&[0, 0, 0], 7), vec![3, 3, 1]);
        // Bases 5,1,0 and 3 cells -> level 2 suffices (capacity 0+1+2):
        // fills [0, 1, 2] with no surplus.
        assert_eq!(waterfill(&[5, 1, 0], 3), vec![0, 1, 2]);
    }

    #[test]
    fn waterfill_conserves_cells_and_minimizes_max() {
        let bases = [10, 4, 4, 0];
        for cells in 0..40u64 {
            let fill = waterfill(&bases, cells);
            assert_eq!(fill.iter().sum::<u64>(), cells);
            let level = bases
                .iter()
                .zip(&fill)
                .map(|(b, f)| b + f)
                .max()
                .expect("non-empty");
            // No level below is feasible.
            if level > 0 {
                let cap: u64 = bases.iter().map(|&b| (level - 1).saturating_sub(b)).sum();
                assert!(
                    cap < cells || level == *bases.iter().max().expect("non-empty"),
                    "cells={cells} level={level} not minimal"
                );
            }
        }
    }

    #[test]
    fn memory_core_matches_ceiling_formula() {
        let c = mem_core(40, 39, 1000);
        for w in 1..=48u32 {
            let d = design_wrapper(&c, w).unwrap();
            let si = 40_u64.div_ceil(u64::from(w));
            let so = 39_u64.div_ceil(u64::from(w));
            assert_eq!(d.scan_in_length(), si, "w={w}");
            assert_eq!(d.scan_out_length(), so, "w={w}");
            assert_eq!(d.test_time(), testing_time(si, so, 1000));
        }
    }

    #[test]
    fn scan_core_single_wire_serializes_everything() {
        let c = Core::builder("c")
            .inputs(3)
            .outputs(2)
            .scan_chains([10, 6])
            .patterns(7)
            .build()
            .unwrap();
        let d = design_wrapper(&c, 1).unwrap();
        assert_eq!(d.scan_in_length(), 3 + 16);
        assert_eq!(d.scan_out_length(), 16 + 2);
        assert_eq!(d.used_width(), 1);
    }

    #[test]
    fn test_time_non_increasing_in_width() {
        for core in benchmarks::d695().cores() {
            let mut prev = u64::MAX;
            for w in 1..=64 {
                let t = design_wrapper(core, w).unwrap().test_time();
                assert!(
                    t <= prev,
                    "{}: T({w})={t} > T({})={prev}",
                    core.name(),
                    w - 1
                );
                prev = t;
            }
        }
    }

    #[test]
    fn used_width_never_exceeds_requested() {
        for core in benchmarks::d695().cores() {
            for w in [1, 3, 8, 17, 64] {
                let d = design_wrapper(core, w).unwrap();
                assert!(d.used_width() <= w);
                assert_eq!(d.chains().len(), w as usize);
            }
        }
    }

    #[test]
    fn all_scan_chains_are_threaded() {
        for core in benchmarks::d695().cores() {
            for w in [1, 2, 5, 16, 32, 64] {
                let d = design_wrapper(core, w).unwrap();
                let mut threaded: Vec<u32> = d
                    .chains()
                    .iter()
                    .flat_map(|c| c.scan_chains.iter().copied())
                    .collect();
                let mut expected = core.scan_chains().to_vec();
                threaded.sort_unstable();
                expected.sort_unstable();
                assert_eq!(threaded, expected, "{} w={w}", core.name());
            }
        }
    }

    #[test]
    fn all_cells_are_placed() {
        for core in benchmarks::d695().cores() {
            for w in [1, 2, 5, 16, 32, 64] {
                let d = design_wrapper(core, w).unwrap();
                let ins: u32 = d.chains().iter().map(|c| c.input_cells).sum();
                let outs: u32 = d.chains().iter().map(|c| c.output_cells).sum();
                assert_eq!(ins, core.input_cells());
                assert_eq!(outs, core.output_cells());
            }
        }
    }

    #[test]
    fn reported_lengths_match_chain_layout() {
        for core in benchmarks::d695().cores() {
            let d = design_wrapper(core, 12).unwrap();
            let si = d
                .chains()
                .iter()
                .map(ChainLayout::scan_in_length)
                .max()
                .unwrap();
            let so = d
                .chains()
                .iter()
                .map(ChainLayout::scan_out_length)
                .max()
                .unwrap();
            assert_eq!(d.scan_in_length(), si);
            assert_eq!(d.scan_out_length(), so);
            assert_eq!(d.test_time(), testing_time(si, so, core.patterns()));
        }
    }

    #[test]
    fn bfd_balances_equal_chains() {
        let c = Core::builder("c")
            .scan_chains([8, 8, 8, 8])
            .inputs(1)
            .patterns(1)
            .build()
            .unwrap();
        let d = design_wrapper(&c, 4).unwrap();
        // Four equal chains over four wires: one each.
        assert_eq!(d.scan_in_length(), 9); // 8 scan + 1 input cell on one chain
        assert_eq!(d.scan_out_length(), 8);
        assert_eq!(d.used_width(), 4);
    }

    #[test]
    fn width_beyond_need_leaves_chains_empty() {
        let c = mem_core(2, 1, 3);
        let d = design_wrapper(&c, 8).unwrap();
        assert_eq!(d.used_width(), 2, "two input cells dominate");
        assert_eq!(d.test_time(), testing_time(1, 1, 3));
    }
}
