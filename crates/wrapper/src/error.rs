use std::error::Error;
use std::fmt;

/// Error type for wrapper design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum WrapperError {
    /// A wrapper was requested at TAM width zero; a core needs at least
    /// one TAM wire to be tested.
    ZeroWidth,
}

impl fmt::Display for WrapperError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WrapperError::ZeroWidth => f.write_str("wrapper requested at TAM width zero"),
        }
    }
}

impl Error for WrapperError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(WrapperError::ZeroWidth.to_string().contains("width zero"));
    }
}
