//! The core testing-time formula of the paper's reference [8].

/// Computes the testing time, in clock cycles, of a wrapped core with
/// scan-in length `scan_in`, scan-out length `scan_out` and `patterns`
/// test patterns:
///
/// ```text
/// T = (1 + max(s_i, s_o)) · p + min(s_i, s_o)
/// ```
///
/// Scan-in of pattern `k+1` overlaps scan-out of pattern `k`, so each of
/// the `p` patterns costs `max(s_i, s_o)` shift cycles plus one capture
/// cycle; the final response flush costs the trailing `min(s_i, s_o)`.
///
/// # Example
///
/// ```
/// use tamopt_wrapper::testing_time;
///
/// // 10 patterns through a wrapper with s_i = 20, s_o = 12:
/// assert_eq!(testing_time(20, 12, 10), (1 + 20) * 10 + 12);
/// // A pure-combinational core wrapped at width >= terminals: s = 1.
/// assert_eq!(testing_time(1, 1, 5), 11);
/// ```
pub fn testing_time(scan_in: u64, scan_out: u64, patterns: u64) -> u64 {
    (1 + scan_in.max(scan_out)) * patterns + scan_in.min(scan_out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formula_matches_reference() {
        assert_eq!(testing_time(0, 0, 7), 7);
        assert_eq!(testing_time(5, 3, 1), 6 + 3);
        assert_eq!(testing_time(3, 5, 1), 6 + 3, "symmetric in s_i/s_o");
        assert_eq!(testing_time(100, 100, 10), 101 * 10 + 100);
    }

    #[test]
    fn monotone_in_all_arguments() {
        assert!(testing_time(10, 10, 5) <= testing_time(11, 10, 5));
        assert!(testing_time(10, 10, 5) <= testing_time(10, 11, 5));
        assert!(testing_time(10, 10, 5) <= testing_time(10, 10, 6));
    }
}
