//! Test-wrapper design for embedded cores — problem *P_W* of the paper.
//!
//! A test wrapper is the thin shell of scan cells around an embedded core
//! that connects its functional terminals and internal scan chains to the
//! TAM wires feeding it. Given a core and a TAM width `w`, the
//! `Design_wrapper` algorithm (from the authors' earlier JETTA'02 work,
//! reference [8] of the paper) builds at most `w` *wrapper scan chains*
//! such that:
//!
//! 1. the core testing time is minimized, and
//! 2. the TAM width actually used is minimized (the algorithm is
//!    "reluctant" to open a new wrapper chain).
//!
//! The testing time of a core wrapped with scan-in length `s_i`,
//! scan-out length `s_o` and `p` patterns is
//!
//! ```text
//! T = (1 + max(s_i, s_o)) · p + min(s_i, s_o)
//! ```
//!
//! This crate implements:
//!
//! * [`design_wrapper`] — the wrapper construction itself
//!   ([`WrapperDesign`] describes the resulting chains);
//! * [`TimeTable`] — the `T_i(w)` tables consumed by the core-assignment
//!   and partitioning layers;
//! * [`pareto`] — Pareto-optimal width analysis (the staircase of
//!   `T(w)`) and the bottleneck lower bound that explains the paper's
//!   p31108 saturation phenomenon.
//!
//! # Example
//!
//! ```
//! use tamopt_soc::Core;
//! use tamopt_wrapper::design_wrapper;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let core = Core::builder("s9234")
//!     .inputs(36)
//!     .outputs(39)
//!     .scan_chains([54, 53, 52, 52])
//!     .patterns(105)
//!     .build()?;
//! let wide = design_wrapper(&core, 16)?;
//! let narrow = design_wrapper(&core, 2)?;
//! assert!(wide.test_time() <= narrow.test_time());
//! assert!(wide.used_width() <= 16);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod design;
mod error;
pub mod pareto;
mod table;
mod time;

pub use crate::design::{design_wrapper, ChainLayout, WrapperDesign};
pub use crate::error::WrapperError;
pub use crate::table::TimeTable;
pub use crate::time::testing_time;
