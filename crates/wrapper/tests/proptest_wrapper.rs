//! Property-based tests of wrapper design (*P_W*) invariants.

use proptest::prelude::*;
use tamopt_soc::Core;
use tamopt_wrapper::{design_wrapper, testing_time, ChainLayout};

/// Strategy for arbitrary (but valid) cores.
fn arb_core() -> impl Strategy<Value = Core> {
    (
        0u32..200,                                   // inputs
        0u32..200,                                   // outputs
        0u32..20,                                    // bidirs
        proptest::collection::vec(1u32..300, 0..12), // scan chains
        1u64..5000,                                  // patterns
    )
        .prop_filter_map("core must be non-empty", |(i, o, b, scan, p)| {
            Core::builder("c")
                .inputs(i)
                .outputs(o)
                .bidirs(b)
                .scan_chains(scan)
                .patterns(p)
                .build()
                .ok()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every internal scan chain is threaded exactly once, and every
    /// wrapper cell is placed exactly once, at any width.
    #[test]
    fn conservation(core in arb_core(), width in 1u32..80) {
        let d = design_wrapper(&core, width).expect("width >= 1");
        let mut threaded: Vec<u32> =
            d.chains().iter().flat_map(|c| c.scan_chains.iter().copied()).collect();
        let mut expected = core.scan_chains().to_vec();
        threaded.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(threaded, expected);
        let ins: u32 = d.chains().iter().map(|c| c.input_cells).sum();
        let outs: u32 = d.chains().iter().map(|c| c.output_cells).sum();
        prop_assert_eq!(ins, core.input_cells());
        prop_assert_eq!(outs, core.output_cells());
    }

    /// Reported scan-in/scan-out lengths equal the chain layout maxima,
    /// and the testing time follows the formula.
    #[test]
    fn reported_lengths_consistent(core in arb_core(), width in 1u32..80) {
        let d = design_wrapper(&core, width).expect("width >= 1");
        let si = d.chains().iter().map(ChainLayout::scan_in_length).max().unwrap_or(0);
        let so = d.chains().iter().map(ChainLayout::scan_out_length).max().unwrap_or(0);
        prop_assert_eq!(d.scan_in_length(), si);
        prop_assert_eq!(d.scan_out_length(), so);
        prop_assert_eq!(d.test_time(), testing_time(si, so, core.patterns()));
    }

    /// Testing time is non-increasing in TAM width (the staircase).
    #[test]
    fn monotone_in_width(core in arb_core(), width in 1u32..60) {
        let narrow = design_wrapper(&core, width).expect("width >= 1");
        let wide = design_wrapper(&core, width + 1).expect("width >= 1");
        prop_assert!(wide.test_time() <= narrow.test_time());
    }

    /// The design never claims more wires than requested, and unused
    /// chains are truly empty.
    #[test]
    fn width_accounting(core in arb_core(), width in 1u32..80) {
        let d = design_wrapper(&core, width).expect("width >= 1");
        prop_assert_eq!(d.chains().len() as u32, width);
        prop_assert!(d.used_width() <= width);
        let nonempty = d.chains().iter().filter(|c| !c.is_empty()).count() as u32;
        prop_assert_eq!(nonempty, d.used_width());
    }

    /// A lower bound: no wrapper can beat ceil(cells / width) on either
    /// path (cells can't share a wire in the same cycle).
    #[test]
    fn information_lower_bound(core in arb_core(), width in 1u32..80) {
        let d = design_wrapper(&core, width).expect("width >= 1");
        let in_bits = u64::from(core.input_cells()) + core.scan_cells();
        let out_bits = u64::from(core.output_cells()) + core.scan_cells();
        let si_lb = in_bits.div_ceil(u64::from(width));
        let so_lb = out_bits.div_ceil(u64::from(width));
        prop_assert!(d.scan_in_length() >= si_lb);
        prop_assert!(d.scan_out_length() >= so_lb);
    }

    /// Stitching policy: at full width (one wire per internal chain),
    /// the wrapper time is pinned by the longest internal chain, so
    /// balanced stitching never tests slower than a skewed (geometric)
    /// stitch of the same flip-flops.
    #[test]
    fn balanced_stitching_wins_at_full_width(
        cells in 8u32..2000,
        chains in 2u32..12,
        ratio in 1.2f64..4.0,
        io in 0u32..100,
        patterns in 1u64..2000,
    ) {
        let build = |lengths: Vec<u32>| {
            Core::builder("c")
                .inputs(io)
                .outputs(io)
                .scan_chains(lengths)
                .patterns(patterns)
                .build()
                .expect("cells >= 8 makes a non-empty core")
        };
        let balanced = build(tamopt_soc::stitch::balanced(cells, chains));
        let skewed = build(tamopt_soc::stitch::geometric(cells, chains, ratio));
        let width = chains.max(1);
        let d_bal = design_wrapper(&balanced, width).expect("width >= 1");
        let d_geo = design_wrapper(&skewed, width).expect("width >= 1");
        prop_assert!(
            d_bal.test_time() <= d_geo.test_time(),
            "balanced {} > geometric {}",
            d_bal.test_time(),
            d_geo.test_time()
        );
    }
}
