use std::fmt::Write as _;
use std::time::Duration;

use tamopt_assign::{AssignResult, TamSet};
use tamopt_partition::PruneStats;
use tamopt_soc::Soc;
use tamopt_wrapper::{design_wrapper, WrapperDesign};

use crate::TamOptError;

/// A complete SOC test architecture: the output of [`crate::CoOptimizer`].
///
/// Bundles the chosen TAM set, the core assignment, the per-core wrapper
/// designs and the solve statistics into one reviewable object.
#[derive(Debug, Clone)]
pub struct Architecture {
    /// The SOC the architecture was designed for.
    pub soc: Soc,
    /// The TAM widths (non-decreasing; the paper's partition notation).
    pub tams: TamSet,
    /// The optimized core assignment.
    pub assignment: AssignResult,
    /// The wrapper design of every core at its TAM's width
    /// (`wrappers[core]`).
    pub wrappers: Vec<WrapperDesign>,
    /// Step-1 (heuristic) SOC time, before the final optimization.
    pub heuristic_time_cycles: u64,
    /// Pruning statistics of the partition search.
    pub stats: PruneStats,
    /// Wall-clock time spent in the partition search.
    pub evaluate_time: Duration,
    /// Wall-clock time spent in the final exact step.
    pub final_time: Duration,
}

impl Architecture {
    pub(crate) fn assemble(
        soc: Soc,
        tams: TamSet,
        assignment: AssignResult,
        heuristic_time_cycles: u64,
        stats: PruneStats,
        evaluate_time: Duration,
        final_time: Duration,
    ) -> Result<Self, TamOptError> {
        let wrappers = soc
            .iter()
            .zip(assignment.assignment())
            .map(|(core, &tam)| design_wrapper(core, tams.width(tam)))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Architecture {
            soc,
            tams,
            assignment,
            wrappers,
            heuristic_time_cycles,
            stats,
            evaluate_time,
            final_time,
        })
    }

    /// SOC testing time of this architecture, in clock cycles.
    pub fn soc_time(&self) -> u64 {
        self.assignment.soc_time()
    }

    /// Number of TAMs.
    pub fn num_tams(&self) -> usize {
        self.tams.len()
    }

    /// The wrapper designed for `core` (indexed in SOC order).
    pub fn wrapper(&self, core: usize) -> &WrapperDesign {
        &self.wrappers[core]
    }

    /// Idle wires summed over all cores: TAM wires assigned but unused by
    /// the wrapper (the waste multiple TAMs are meant to reduce).
    pub fn idle_wires(&self) -> u64 {
        self.wrappers
            .iter()
            .zip(self.assignment.assignment())
            .map(|(w, &tam)| u64::from(self.tams.width(tam) - w.used_width()))
            .sum()
    }

    /// A human-readable report in the style of the paper's tables.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "SOC {}", self.soc.name());
        let _ = writeln!(
            out,
            "  architecture : {} TAM(s), widths {} (W = {})",
            self.tams.len(),
            self.tams,
            self.tams.total_width()
        );
        let _ = writeln!(out, "  testing time : {} cycles", self.soc_time());
        let _ = writeln!(
            out,
            "  heuristic    : {} cycles before the final exact step",
            self.heuristic_time_cycles
        );
        let _ = writeln!(
            out,
            "  assignment   : {}",
            self.assignment.assignment_vector()
        );
        for (tam, &time) in self.assignment.tam_times().iter().enumerate() {
            let members: Vec<&str> = self
                .soc
                .iter()
                .zip(self.assignment.assignment())
                .filter(|(_, &t)| t == tam)
                .map(|(c, _)| c.name())
                .collect();
            let _ = writeln!(
                out,
                "  TAM {} (w={:>3}) : {:>12} cycles  [{}]",
                tam + 1,
                self.tams.width(tam),
                time,
                members.join(", ")
            );
        }
        let _ = writeln!(out, "  idle wires   : {}", self.idle_wires());
        let _ = writeln!(
            out,
            "  search       : {} partitions enumerated, {} completed, {} pruned",
            self.stats.enumerated, self.stats.completed, self.stats.aborted
        );
        let _ = writeln!(
            out,
            "  wall clock   : {:.3?} evaluate + {:.3?} final step",
            self.evaluate_time, self.final_time
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CoOptimizer, Strategy};
    use tamopt_soc::benchmarks;

    fn arch() -> Architecture {
        CoOptimizer::new(benchmarks::d695(), 24)
            .max_tams(3)
            .run()
            .unwrap()
    }

    #[test]
    fn wrappers_cover_every_core() {
        let a = arch();
        assert_eq!(a.wrappers.len(), a.soc.num_cores());
        for (i, w) in a.wrappers.iter().enumerate() {
            let tam = a.assignment.assignment()[i];
            assert_eq!(w.width(), a.tams.width(tam));
        }
    }

    #[test]
    fn soc_time_consistent_with_wrappers() {
        let a = arch();
        // Recompute per-TAM times from the wrappers directly.
        let mut tam_times = vec![0u64; a.num_tams()];
        for (i, w) in a.wrappers.iter().enumerate() {
            tam_times[a.assignment.assignment()[i]] += w.test_time();
        }
        assert_eq!(tam_times.iter().max().copied().unwrap(), a.soc_time());
    }

    #[test]
    fn report_mentions_everything() {
        let a = arch();
        let r = a.report();
        assert!(r.contains("SOC d695"));
        assert!(r.contains("testing time"));
        assert!(r.contains("TAM 1"));
        assert!(r.contains("partitions enumerated"));
    }

    #[test]
    fn idle_wires_bounded_by_total_width() {
        let a = arch();
        assert!(a.idle_wires() <= u64::from(a.tams.total_width()) * a.soc.num_cores() as u64);
    }

    #[test]
    fn heuristic_time_at_least_final() {
        let a = CoOptimizer::new(benchmarks::d695(), 32)
            .max_tams(4)
            .strategy(Strategy::TwoStep)
            .run()
            .unwrap();
        assert!(a.soc_time() <= a.heuristic_time_cycles);
    }
}
