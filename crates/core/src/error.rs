use std::error::Error;
use std::fmt;

use tamopt_assign::AssignError;
use tamopt_partition::PartitionError;
use tamopt_wrapper::WrapperError;

use crate::schedule::ScheduleError;

/// Top-level error type of the `tamopt` facade.
///
/// Wraps the layer-specific errors so that [`crate::CoOptimizer::run`]
/// has a single error channel.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TamOptError {
    /// Wrapper design failed (zero width).
    Wrapper(WrapperError),
    /// Assignment solving failed.
    Assign(AssignError),
    /// Partition optimization failed (validation or solver).
    Partition(PartitionError),
    /// Power-aware scheduling failed (missing or oversized ratings).
    Schedule(ScheduleError),
    /// A frontier sweep specification produced no widths: zero stride,
    /// an empty range, or a range starting at width 0.
    InvalidFrontier {
        /// Inclusive sweep start.
        min_width: u32,
        /// Inclusive sweep end.
        max_width: u32,
        /// Sweep stride.
        step: u32,
    },
}

impl fmt::Display for TamOptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TamOptError::Wrapper(e) => write!(f, "wrapper design: {e}"),
            TamOptError::Assign(e) => write!(f, "core assignment: {e}"),
            TamOptError::Partition(e) => write!(f, "partition optimization: {e}"),
            TamOptError::Schedule(e) => write!(f, "power scheduling: {e}"),
            TamOptError::InvalidFrontier {
                min_width,
                max_width,
                step,
            } => write!(
                f,
                "invalid frontier sweep {min_width}..={max_width} step {step}"
            ),
        }
    }
}

impl Error for TamOptError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TamOptError::Wrapper(e) => Some(e),
            TamOptError::Assign(e) => Some(e),
            TamOptError::Partition(e) => Some(e),
            TamOptError::Schedule(e) => Some(e),
            TamOptError::InvalidFrontier { .. } => None,
        }
    }
}

impl From<ScheduleError> for TamOptError {
    fn from(e: ScheduleError) -> Self {
        TamOptError::Schedule(e)
    }
}

impl From<WrapperError> for TamOptError {
    fn from(e: WrapperError) -> Self {
        TamOptError::Wrapper(e)
    }
}

impl From<AssignError> for TamOptError {
    fn from(e: AssignError) -> Self {
        TamOptError::Assign(e)
    }
}

impl From<PartitionError> for TamOptError {
    fn from(e: PartitionError) -> Self {
        TamOptError::Partition(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = TamOptError::from(WrapperError::ZeroWidth);
        assert!(e.to_string().contains("wrapper design"));
        assert!(Error::source(&e).is_some());
        let e = TamOptError::from(AssignError::NoTams);
        assert!(e.to_string().contains("core assignment"));
        let e = TamOptError::from(PartitionError::ZeroWidth);
        assert!(e.to_string().contains("partition"));
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<TamOptError>();
    }
}
