//! Typed query results of the [`CoOptimizer`](crate::CoOptimizer)
//! beyond the single-architecture point query.
//!
//! The paper's methodology answers one question — "the best architecture
//! for (SOC, `W`)" — but two neighboring questions recur in practice and
//! are much cheaper to answer *inside* the search than by repeating it:
//!
//! * **top-K** ([`RankedArchitectures`]): the `K` best architectures of
//!   one scan. Because step 1 ranks by *heuristic* time, re-optimizing
//!   `K` candidates exactly surfaces the paper's anomaly (its p21241,
//!   `W = 16` discussion) instead of silently losing the true winner;
//! * **frontier** ([`ParetoFrontier`]): the testing-time-versus-width
//!   trade-off curve of the paper's Tables 11–13, swept as one query
//!   sharing cost-matrix memoization and warm-start bounds across
//!   widths.

use std::fmt::Write as _;

use crate::Architecture;

/// The `K` best architectures of one co-optimization query, best first.
///
/// Produced by [`CoOptimizer::top_k`](crate::CoOptimizer::top_k).
/// Entries are ranked by final (optimized) SOC testing time; ties keep
/// the deterministic partition-scan order. With `k = 1` the single entry
/// is bit-identical to [`CoOptimizer::run`](crate::CoOptimizer::run).
#[derive(Debug, Clone)]
pub struct RankedArchitectures {
    /// Up to `k` architectures, best first (fewer when the partition
    /// space itself is smaller than `k`).
    pub entries: Vec<Architecture>,
}

impl RankedArchitectures {
    /// The rank-1 architecture.
    pub fn best(&self) -> &Architecture {
        self.entries.first().expect("ranking is never empty")
    }

    /// Number of ranked architectures (`<= k`).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ranking is empty (never, for a successful query).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// A compact rank table in the style of the paper's result tables.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>4} {:>8} {:>14}  partition",
            "rank", "TAMs", "time (cycles)"
        );
        for (rank, arch) in self.entries.iter().enumerate() {
            let _ = writeln!(
                out,
                "{:>4} {:>8} {:>14}  {}",
                rank + 1,
                arch.num_tams(),
                arch.soc_time(),
                arch.tams
            );
        }
        out
    }
}

/// One width of a [`ParetoFrontier`]: the best architecture found at
/// that total TAM width, alongside the bottleneck lower bound there.
#[derive(Debug, Clone)]
pub struct FrontierPoint {
    /// Total TAM width of this point.
    pub width: u32,
    /// The co-optimized architecture at this width.
    pub architecture: Architecture,
    /// The bottleneck lower bound at this width: no architecture can
    /// test faster than the slowest core with every wire to itself
    /// ([`pareto::bottleneck_lower_bound`](tamopt_wrapper::pareto)).
    pub lower_bound: u64,
}

impl FrontierPoint {
    /// Whether this point is *pinned*: its testing time equals the
    /// bottleneck bound, so no extra width or TAM count can improve it.
    pub fn at_bound(&self) -> bool {
        self.architecture.soc_time() == self.lower_bound
    }
}

/// The testing-time-versus-width trade-off curve of one SOC — the
/// paper's design-space tables as a single query result.
///
/// Produced by [`CoOptimizer::frontier`](crate::CoOptimizer::frontier).
/// Points are width-ascending and their testing times non-increasing
/// (more width never hurts).
#[derive(Debug, Clone)]
pub struct ParetoFrontier {
    /// One point per swept width, width-ascending.
    pub points: Vec<FrontierPoint>,
    /// Whether every width was swept with a complete partition scan. A
    /// budget deadline truncates the sweep to a valid width prefix.
    pub complete: bool,
}

impl ParetoFrontier {
    /// Number of swept widths.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the sweep produced no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The point at total width `width`, if it was swept.
    pub fn at_width(&self, width: u32) -> Option<&FrontierPoint> {
        self.points.iter().find(|p| p.width == width)
    }

    /// The smallest swept width whose testing time already sits on the
    /// bottleneck bound — the saturation knee of the paper's Tables
    /// 11–13 (`None` when no swept point is pinned).
    pub fn saturation_width(&self) -> Option<u32> {
        self.points.iter().find(|p| p.at_bound()).map(|p| p.width)
    }

    /// The width/TAMs/time/bound table of the design-space exploration
    /// example, one row per swept width.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>5} {:>8} {:>14} {:>14}  note",
            "W", "TAMs", "time (cycles)", "lower bound"
        );
        for p in &self.points {
            let pinned = if p.at_bound() {
                "<- at the bottleneck bound"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "{:>5} {:>8} {:>14} {:>14}  {}",
                p.width,
                p.architecture.num_tams(),
                p.architecture.soc_time(),
                p.lower_bound,
                pinned
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{benchmarks, CoOptimizer};

    #[test]
    fn rank_report_lists_every_entry() {
        let ranked = CoOptimizer::new(benchmarks::d695(), 24)
            .max_tams(3)
            .top_k(3)
            .unwrap();
        let report = ranked.report();
        assert!(report.contains("rank"));
        assert_eq!(report.lines().count(), 1 + ranked.len());
    }

    #[test]
    fn frontier_report_is_the_design_space_table() {
        let frontier = CoOptimizer::new(benchmarks::d695(), 32)
            .max_tams(4)
            .frontier(16..=32, 8)
            .unwrap();
        let report = frontier.report();
        assert!(report.contains("lower bound"));
        assert_eq!(report.lines().count(), 1 + frontier.len());
        for p in &frontier.points {
            assert!(p.architecture.soc_time() >= p.lower_bound);
        }
    }
}
