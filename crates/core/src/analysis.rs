//! Utilization analysis of a test architecture.
//!
//! The paper motivates multiple TAMs with two effects (Section 1): with
//! more TAMs of different widths, (i) more cores ride TAMs whose widths
//! match their test-data needs, so fewer *idle TAM wires* are assigned,
//! and (ii) test parallelism grows. This module turns those claims into
//! measurable quantities on a finished [`Architecture`]:
//!
//! * **idle wires** — per core, TAM wires assigned but not used by the
//!   wrapper (`width - used_width`);
//! * **idle cycles** — per TAM, cycles between the TAM finishing and the
//!   SOC testing time (the slack the makespan objective leaves);
//! * **wire-cycle utilization** — the fraction of the `W × T` wire-cycle
//!   budget actually carrying test data, the architecture-level summary
//!   of both effects.
//!
//! # Example
//!
//! ```
//! use tamopt::analysis::UtilizationReport;
//! use tamopt::{benchmarks, CoOptimizer};
//!
//! # fn main() -> Result<(), tamopt::TamOptError> {
//! let narrow = CoOptimizer::new(benchmarks::d695(), 32).max_tams(1).run()?;
//! let wide = CoOptimizer::new(benchmarks::d695(), 32).max_tams(4).run()?;
//! let single = UtilizationReport::new(&narrow);
//! let multi = UtilizationReport::new(&wide);
//! // More TAMs let the heuristic shed idle wire-cycles.
//! assert!(multi.utilization() >= single.utilization());
//! # Ok(())
//! # }
//! ```

use std::fmt;

use crate::Architecture;

/// Utilization figures for one TAM of an architecture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TamUtilization {
    /// TAM index (0-based).
    pub tam: usize,
    /// TAM width in wires.
    pub width: u32,
    /// Number of cores assigned to this TAM.
    pub cores: usize,
    /// Summed testing time of the TAM's cores, in cycles.
    pub busy_cycles: u64,
    /// Cycles this TAM idles while the slowest TAM finishes
    /// (`soc_time - busy_cycles`).
    pub idle_cycles: u64,
    /// Wire-cycles carrying test data: for each core, its testing time
    /// times the wrapper's *used* width.
    pub used_wire_cycles: u64,
    /// Wire-cycle capacity of this TAM over the SOC testing time
    /// (`width · soc_time`).
    pub capacity_wire_cycles: u64,
}

impl TamUtilization {
    /// Fraction of this TAM's wire-cycle capacity carrying test data,
    /// in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.capacity_wire_cycles == 0 {
            return 0.0;
        }
        self.used_wire_cycles as f64 / self.capacity_wire_cycles as f64
    }
}

/// Utilization figures for one core of an architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreUtilization {
    /// Core index in SOC order.
    pub core: usize,
    /// TAM the core rides.
    pub tam: usize,
    /// Width of that TAM.
    pub tam_width: u32,
    /// TAM wires the wrapper actually uses.
    pub used_width: u32,
    /// Core testing time in cycles.
    pub test_time: u64,
}

impl CoreUtilization {
    /// TAM wires assigned to the core but left idle
    /// (`tam_width - used_width`) — the waste the paper's Section 1
    /// says multiple TAMs reduce.
    pub fn idle_wires(&self) -> u32 {
        self.tam_width - self.used_width
    }

    /// Wire-cycles wasted while this core tests
    /// (`idle_wires · test_time`).
    pub fn idle_wire_cycles(&self) -> u64 {
        u64::from(self.idle_wires()) * self.test_time
    }
}

/// A full utilization breakdown of an [`Architecture`].
///
/// Create with [`UtilizationReport::new`]; render with [`fmt::Display`].
#[derive(Debug, Clone, PartialEq)]
pub struct UtilizationReport {
    tams: Vec<TamUtilization>,
    cores: Vec<CoreUtilization>,
    soc_time: u64,
    total_width: u32,
}

impl UtilizationReport {
    /// Analyzes `architecture`.
    pub fn new(architecture: &Architecture) -> Self {
        let soc_time = architecture.soc_time();
        let assignment = architecture.assignment.assignment();
        let cores: Vec<CoreUtilization> = assignment
            .iter()
            .enumerate()
            .map(|(core, &tam)| {
                let wrapper = architecture.wrapper(core);
                CoreUtilization {
                    core,
                    tam,
                    tam_width: architecture.tams.width(tam),
                    used_width: wrapper.used_width(),
                    test_time: wrapper.test_time(),
                }
            })
            .collect();
        let tams = (0..architecture.num_tams())
            .map(|tam| {
                let members: Vec<&CoreUtilization> =
                    cores.iter().filter(|c| c.tam == tam).collect();
                let busy_cycles = architecture.assignment.tam_times()[tam];
                let width = architecture.tams.width(tam);
                TamUtilization {
                    tam,
                    width,
                    cores: members.len(),
                    busy_cycles,
                    idle_cycles: soc_time - busy_cycles,
                    used_wire_cycles: members
                        .iter()
                        .map(|c| u64::from(c.used_width) * c.test_time)
                        .sum(),
                    capacity_wire_cycles: u64::from(width) * soc_time,
                }
            })
            .collect();
        UtilizationReport {
            tams,
            cores,
            soc_time,
            total_width: architecture.tams.total_width(),
        }
    }

    /// Per-TAM figures, in TAM order.
    pub fn tams(&self) -> &[TamUtilization] {
        &self.tams
    }

    /// Per-core figures, in SOC order.
    pub fn cores(&self) -> &[CoreUtilization] {
        &self.cores
    }

    /// The architecture's SOC testing time in cycles.
    pub fn soc_time(&self) -> u64 {
        self.soc_time
    }

    /// Wire-cycles carrying test data, summed over all TAMs.
    pub fn used_wire_cycles(&self) -> u64 {
        self.tams.iter().map(|t| t.used_wire_cycles).sum()
    }

    /// Total wire-cycle budget (`W · soc_time`).
    pub fn capacity_wire_cycles(&self) -> u64 {
        u64::from(self.total_width) * self.soc_time
    }

    /// Architecture-level wire-cycle utilization in `[0, 1]`: the
    /// fraction of the `W × T` budget that carries test data. Higher is
    /// better; the paper's argument for more TAMs is precisely that they
    /// raise this figure.
    pub fn utilization(&self) -> f64 {
        let capacity = self.capacity_wire_cycles();
        if capacity == 0 {
            return 0.0;
        }
        self.used_wire_cycles() as f64 / capacity as f64
    }

    /// Idle wires summed over cores (each core's assigned-but-unused
    /// wires, regardless of duration). Matches
    /// [`Architecture::idle_wires`].
    pub fn idle_wires(&self) -> u64 {
        self.cores.iter().map(|c| u64::from(c.idle_wires())).sum()
    }

    /// Wire-cycles wasted by idle wires while their cores test.
    pub fn idle_wire_cycles(&self) -> u64 {
        self.cores.iter().map(|c| c.idle_wire_cycles()).sum()
    }

    /// Wire-cycles wasted by TAMs idling after finishing (slack against
    /// the makespan).
    pub fn slack_wire_cycles(&self) -> u64 {
        self.tams
            .iter()
            .map(|t| u64::from(t.width) * t.idle_cycles)
            .sum()
    }

    /// The cores with the most idle wires, worst first, up to `limit`
    /// entries — the candidates a designer would move to a narrower TAM.
    pub fn worst_offenders(&self, limit: usize) -> Vec<&CoreUtilization> {
        let mut sorted: Vec<&CoreUtilization> = self.cores.iter().collect();
        sorted.sort_by(|a, b| {
            b.idle_wire_cycles()
                .cmp(&a.idle_wire_cycles())
                .then(a.core.cmp(&b.core))
        });
        sorted.truncate(limit);
        sorted
    }
}

impl fmt::Display for UtilizationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "wire-cycle utilization: {:.1} % of W×T = {} wire-cycles",
            self.utilization() * 100.0,
            self.capacity_wire_cycles()
        )?;
        writeln!(
            f,
            "  idle-wire waste : {:>12} wire-cycles",
            self.idle_wire_cycles()
        )?;
        writeln!(
            f,
            "  makespan slack  : {:>12} wire-cycles",
            self.slack_wire_cycles()
        )?;
        for t in &self.tams {
            writeln!(
                f,
                "  TAM {} (w={:>3}): {:>3} cores, busy {:>10} cy, idle {:>10} cy, {:>5.1} % utilized",
                t.tam + 1,
                t.width,
                t.cores,
                t.busy_cycles,
                t.idle_cycles,
                t.utilization() * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CoOptimizer;
    use tamopt_soc::benchmarks;

    fn arch(max_tams: u32) -> Architecture {
        CoOptimizer::new(benchmarks::d695(), 32)
            .max_tams(max_tams)
            .run()
            .unwrap()
    }

    #[test]
    fn utilization_is_a_fraction() {
        let report = UtilizationReport::new(&arch(3));
        assert!(report.utilization() > 0.0);
        assert!(report.utilization() <= 1.0);
        for t in report.tams() {
            assert!(t.utilization() <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn idle_wires_match_architecture() {
        let a = arch(3);
        let report = UtilizationReport::new(&a);
        assert_eq!(report.idle_wires(), a.idle_wires());
    }

    #[test]
    fn per_tam_figures_are_consistent() {
        let a = arch(4);
        let report = UtilizationReport::new(&a);
        for t in report.tams() {
            assert_eq!(t.busy_cycles + t.idle_cycles, report.soc_time());
            assert!(t.used_wire_cycles <= t.capacity_wire_cycles);
        }
        // At least one TAM is the bottleneck with zero idle cycles.
        assert!(report.tams().iter().any(|t| t.idle_cycles == 0));
    }

    #[test]
    fn cores_cover_soc_and_sum_to_tam_figures() {
        let a = arch(3);
        let report = UtilizationReport::new(&a);
        assert_eq!(report.cores().len(), a.soc.num_cores());
        for t in report.tams() {
            let members: u64 = report
                .cores()
                .iter()
                .filter(|c| c.tam == t.tam)
                .map(|c| c.test_time)
                .sum();
            assert_eq!(members, t.busy_cycles);
        }
    }

    #[test]
    fn used_plus_idle_plus_slack_fills_capacity() {
        let report = UtilizationReport::new(&arch(4));
        assert_eq!(
            report.used_wire_cycles() + report.idle_wire_cycles() + report.slack_wire_cycles(),
            report.capacity_wire_cycles()
        );
    }

    #[test]
    fn more_tams_do_not_hurt_utilization_on_d695() {
        let single = UtilizationReport::new(&arch(1));
        let multi = UtilizationReport::new(&arch(4));
        assert!(multi.utilization() >= single.utilization());
    }

    #[test]
    fn worst_offenders_sorted_and_bounded() {
        let report = UtilizationReport::new(&arch(3));
        let worst = report.worst_offenders(5);
        assert!(worst.len() <= 5);
        for pair in worst.windows(2) {
            assert!(pair[0].idle_wire_cycles() >= pair[1].idle_wire_cycles());
        }
        let all = report.worst_offenders(usize::MAX);
        assert_eq!(all.len(), report.cores().len());
    }

    #[test]
    fn display_mentions_every_tam() {
        let a = arch(3);
        let text = UtilizationReport::new(&a).to_string();
        for tam in 1..=a.num_tams() {
            assert!(text.contains(&format!("TAM {tam} ")), "missing TAM {tam}");
        }
        assert!(text.contains("utilization"));
    }
}
