//! # tamopt — wrapper/TAM co-optimization for SOC test architectures
//!
//! A from-scratch reproduction of *Iyengar, Chakrabarty & Marinissen,
//! "Efficient Wrapper/TAM Co-Optimization for Large SOCs" (DATE 2002)*,
//! packaged as the library a DFT engineer would actually use.
//!
//! An SOC integrates many pre-designed cores; testing them requires
//! (1) a *test wrapper* around each core and (2) *test access mechanisms*
//! (TAMs) — on-chip buses of limited total width `W` that carry test
//! data from the chip pins to the wrappers. Cores on one TAM are tested
//! serially; TAMs operate in parallel. Minimizing the SOC testing time
//! means co-optimizing four nested decisions: wrapper design per core
//! (*P_W*), core-to-TAM assignment (*P_AW*), the width partition
//! (*P_PAW*), and the number of TAMs (*P_NPAW*).
//!
//! The centerpiece is the paper's two-step heuristic methodology
//! ([`CoOptimizer`] with [`Strategy::TwoStep`]): the fast
//! `Partition_evaluate`/`Core_assign` heuristics pick an architecture,
//! then one exact optimization pass polishes the core assignment. The
//! exhaustive exact baseline ([`Strategy::Exhaustive`]) is included for
//! comparison, as are all substrates (wrapper design, a simplex LP
//! solver, branch-and-bound ILP).
//!
//! ## Quick start
//!
//! ```
//! use tamopt::{benchmarks, CoOptimizer};
//!
//! # fn main() -> Result<(), tamopt::TamOptError> {
//! let soc = benchmarks::d695();
//! let architecture = CoOptimizer::new(soc, 32).max_tams(4).run()?;
//! println!("{}", architecture.report());
//! assert_eq!(architecture.tams.total_width(), 32);
//! # Ok(())
//! # }
//! ```
//!
//! ## Crate map
//!
//! | module | contents | paper problem |
//! |---|---|---|
//! | [`soc`] | SOC/core model, `.soc` format, benchmarks, generator | — |
//! | [`wrapper`] | `Design_wrapper`, time tables, Pareto analysis | *P_W* |
//! | [`assign`] | `Core_assign`, exact B&B, the Section 3.2 ILP | *P_AW* |
//! | [`partition`] | `Partition_evaluate`, exhaustive baseline, pipeline | *P_PAW*, *P_NPAW* |
//! | [`engine`] | deterministic parallel executor, `SearchBudget`, shared `τ` | — |
//! | [`service`] | batched + live multi-SOC request queues on one worker pool | extension |
//! | [`store`] | persistent, versioned, crash-safe warm-start store | extension |
//! | [`lp`], [`ilp`] | simplex + branch-and-bound substrate (lpsolve stand-in) | — |
//! | [`rail`] | TestRail (daisy-chain) model of the paper's ref [11] | extension |
//! | [`analysis`] | idle-wire / utilization metrics behind the paper's motivation | extension |
//! | [`schedule`] | serial + power-capped test schedules, Gantt/SVG rendering | extension |
//! | [`power`] | power-aware co-optimization (the paper's refs [9, 13]) | extension |
//! | [`cost`] | first-order DFT area accounting (bus muxes vs rail bypasses) | extension |
//! | [`classic`] | multiplexing / distribution baselines (the paper's ref [1]) | extension |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod architecture;
pub mod classic;
pub mod cost;
mod error;
mod optimizer;
pub mod power;
mod query;
pub mod schedule;

pub mod cli;

pub use crate::architecture::Architecture;
pub use crate::error::TamOptError;
pub use crate::optimizer::{CoOptimizer, Strategy};
pub use crate::query::{FrontierPoint, ParetoFrontier, RankedArchitectures};

/// SOC test-data model, benchmarks, generator, `.soc` format
/// (re-export of [`tamopt_soc`]).
pub mod soc {
    pub use tamopt_soc::*;
}

/// Wrapper design and testing-time tables (re-export of
/// [`tamopt_wrapper`]).
pub mod wrapper {
    pub use tamopt_wrapper::*;
}

/// Core-to-TAM assignment solvers (re-export of [`tamopt_assign`]).
pub mod assign {
    pub use tamopt_assign::*;
}

/// Partition optimization and the co-optimization pipeline (re-export of
/// [`tamopt_partition`]).
pub mod partition {
    pub use tamopt_partition::*;
}

/// TestRail (daisy-chain) architecture model and optimizer, the
/// alternative to the paper's test-bus model (re-export of
/// [`tamopt_rail`]).
pub mod rail {
    pub use tamopt_rail::*;
}

/// Deterministic parallel search engine: the unified [`SearchBudget`],
/// the shared incumbent bound and the chunked executor (re-export of
/// [`tamopt_engine`]).
pub mod engine {
    pub use tamopt_engine::*;
}

/// Batched and live multi-SOC co-optimization service: request queues,
/// per-request budgets and cancellation, deterministic batch reports,
/// and the live daemon (`LiveQueue`) with trace replay and warm-start
/// caching (re-export of [`tamopt_service`]). See also
/// [`CoOptimizer::batch`] and [`CoOptimizer::serve`].
pub mod service {
    pub use tamopt_service::*;
}

/// Persistent, versioned, crash-safe warm-start store: incumbents and
/// compressed cost tables per SOC fingerprint, surviving restarts
/// behind the service layer's warm cache (re-export of
/// [`tamopt_store`]). Attach one via [`service::StoreBinding`] /
/// `tamopt serve --store` / `tamopt batch --store`.
pub mod store {
    pub use tamopt_store::*;
}

/// Linear programming substrate (re-export of [`tamopt_lp`]).
pub mod lp {
    pub use tamopt_lp::*;
}

/// Integer programming substrate (re-export of [`tamopt_ilp`]).
pub mod ilp {
    pub use tamopt_ilp::*;
}

// The everyday vocabulary, flattened for convenience.
pub use tamopt_assign::{AssignResult, CostMatrix, TamSet};
pub use tamopt_engine::{ParallelConfig, SearchBudget};
pub use tamopt_soc::{benchmarks, Core, CoreKind, Soc, SocError};
pub use tamopt_wrapper::{design_wrapper, TimeTable, WrapperDesign};
