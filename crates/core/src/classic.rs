//! The classic scan access architectures of Aerts & Marinissen — the
//! paper's reference [1] — as baselines for the test-bus model.
//!
//! Before wrapper/TAM co-optimization, core-based SOCs were tested
//! through one of three fixed access schemes:
//!
//! * **multiplexing** — all `W` wires reach every core, one core tests
//!   at a time: `T = Σ_i T_i(W)` ([`multiplexing`]);
//! * **distribution** — every core gets its own private slice of the
//!   `W` wires and all cores test simultaneously:
//!   `T = max_i T_i(w_i)`, `Σ w_i = W` ([`distribution`], which
//!   optimizes the slice widths);
//! * **daisychain** — cores share a serial path with bypasses (the
//!   TestRail of reference [11]; see [`crate::rail`]).
//!
//! Both schemes here are *limit cases of the paper's test-bus model*:
//! multiplexing is a test bus with `B = 1`, and distribution is a test
//! bus with one core per TAM. The paper's flexible `B` therefore can
//! never lose to either — a property the tests pin down — and the gap
//! it opens is the measurable value of wrapper/TAM co-optimization.
//!
//! # Example
//!
//! ```
//! use tamopt::classic::{distribution, multiplexing};
//! use tamopt::{benchmarks, CoOptimizer, TimeTable};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let soc = benchmarks::d695();
//! let table = TimeTable::new(&soc, 32)?;
//! let mux = multiplexing(&table, 32);
//! let dist = distribution(&table, 32)?;
//! let bus = CoOptimizer::new(soc, 32).max_tams(6).run()?;
//! assert!(bus.soc_time() <= mux);
//! assert!(bus.soc_time() <= dist.time());
//! # Ok(())
//! # }
//! ```

use std::fmt;

use tamopt_wrapper::TimeTable;

/// Error type of the classic-architecture baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ClassicError {
    /// Distribution needs at least one wire per core.
    TooNarrow {
        /// The offered total width.
        width: u32,
        /// The number of cores needing private wires.
        cores: usize,
    },
    /// The width exceeds the time table's range.
    WidthOutOfRange {
        /// The offered total width.
        width: u32,
        /// The table's maximum width.
        max_width: u32,
    },
}

impl fmt::Display for ClassicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClassicError::TooNarrow { width, cores } => write!(
                f,
                "distribution needs one wire per core: {width} wires for {cores} cores"
            ),
            ClassicError::WidthOutOfRange { width, max_width } => {
                write!(f, "width {width} exceeds the table's range {max_width}")
            }
        }
    }
}

impl std::error::Error for ClassicError {}

/// SOC testing time of the *multiplexing* architecture: every core sees
/// the full `width`, cores test one after another.
///
/// Identical to a test bus with a single TAM of width `width`.
///
/// # Panics
///
/// Panics if `width` is `0` or exceeds the table's range (the same
/// contract as [`TimeTable::time`]).
pub fn multiplexing(table: &TimeTable, width: u32) -> u64 {
    (0..table.num_cores())
        .map(|core| table.time(core, width))
        .sum()
}

/// An optimized *distribution* architecture: private per-core widths
/// summing to the budget, all cores testing in parallel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Distribution {
    widths: Vec<u32>,
    time: u64,
}

impl Distribution {
    /// The private width of each core, in SOC order.
    pub fn widths(&self) -> &[u32] {
        &self.widths
    }

    /// SOC testing time: the slowest core at its private width.
    pub fn time(&self) -> u64 {
        self.time
    }
}

/// Optimizes the *distribution* architecture: splits `width` wires into
/// private per-core slices minimizing `max_i T_i(w_i)`.
///
/// Greedy bottleneck allocation: start every core at one wire, then
/// repeatedly grant a wire to the currently slowest core. Because each
/// `T_i(w)` is non-increasing in `w`, no allocation can do better than
/// this exchange-optimal schedule (verified against brute force in the
/// tests).
///
/// # Errors
///
/// * [`ClassicError::TooNarrow`] if `width < table.num_cores()`;
/// * [`ClassicError::WidthOutOfRange`] if `width` exceeds the table.
pub fn distribution(table: &TimeTable, width: u32) -> Result<Distribution, ClassicError> {
    let n = table.num_cores();
    if (width as usize) < n {
        return Err(ClassicError::TooNarrow { width, cores: n });
    }
    if width > table.max_width() {
        return Err(ClassicError::WidthOutOfRange {
            width,
            max_width: table.max_width(),
        });
    }
    let mut widths = vec![1u32; n];
    let mut spare = width - n as u32;
    while spare > 0 {
        let bottleneck = (0..n)
            .max_by_key(|&core| (table.time(core, widths[core]), core))
            .expect("distribution requires at least one core");
        // Granting a wire to the bottleneck may not help it (its
        // staircase can be flat) — but then no core above the flat
        // section exists and the allocation is already optimal.
        if table.time(bottleneck, widths[bottleneck] + 1)
            == table.time(bottleneck, widths[bottleneck])
        {
            // Spend the wire anyway to keep Σ w_i = W (it is free).
            widths[bottleneck] += 1;
            spare -= 1;
            if table.row(bottleneck)[(widths[bottleneck] - 1) as usize..]
                .windows(2)
                .all(|pair| pair[0] == pair[1])
            {
                // The bottleneck saturated: no further grant changes T.
                widths[bottleneck] += spare;
                spare = 0;
            }
            continue;
        }
        widths[bottleneck] += 1;
        spare -= 1;
    }
    let time = (0..n)
        .map(|core| table.time(core, widths[core]))
        .max()
        .unwrap_or(0);
    Ok(Distribution { widths, time })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{benchmarks, CoOptimizer, Strategy};
    use tamopt_wrapper::TimeTable;

    fn table(width: u32) -> TimeTable {
        TimeTable::new(&benchmarks::d695(), width).unwrap()
    }

    #[test]
    fn multiplexing_is_a_single_tam_bus() {
        let soc = benchmarks::d695();
        let t = table(24);
        let bus = CoOptimizer::new(soc, 24)
            .exact_tams(1)
            .strategy(Strategy::Exhaustive)
            .run()
            .unwrap();
        assert_eq!(multiplexing(&t, 24), bus.soc_time());
    }

    #[test]
    fn distribution_widths_sum_to_budget() {
        let t = table(32);
        let d = distribution(&t, 32).unwrap();
        assert_eq!(d.widths().iter().sum::<u32>(), 32);
        assert!(d.widths().iter().all(|&w| w >= 1));
        let recomputed = (0..t.num_cores())
            .map(|core| t.time(core, d.widths()[core]))
            .max()
            .unwrap();
        assert_eq!(d.time(), recomputed);
    }

    #[test]
    fn greedy_matches_brute_force_on_small_instances() {
        // 3 cores, widths up to 6: enumerate all compositions.
        let rows = vec![
            vec![100, 60, 40, 30, 25, 22],
            vec![90, 50, 35, 28, 24, 21],
            vec![80, 45, 30, 24, 20, 18],
        ];
        let t = TimeTable::from_matrix(rows.clone());
        for total in 3u32..=6 {
            let greedy = distribution(&t, total).unwrap().time();
            let mut best = u64::MAX;
            for a in 1..=total - 2 {
                for b in 1..=total - a - 1 {
                    let c = total - a - b;
                    let time = rows[0][(a - 1) as usize]
                        .max(rows[1][(b - 1) as usize])
                        .max(rows[2][(c - 1) as usize]);
                    best = best.min(time);
                }
            }
            assert_eq!(greedy, best, "W = {total}");
        }
    }

    #[test]
    fn flexible_bus_never_loses_to_either_classic() {
        let soc = benchmarks::d695();
        for width in [16u32, 32, 48] {
            let t = TimeTable::new(&soc, width).unwrap();
            let bus = CoOptimizer::new(soc.clone(), width)
                .max_tams(10)
                .run()
                .unwrap();
            assert!(
                bus.soc_time() <= multiplexing(&t, width),
                "mux at W={width}"
            );
            assert!(
                bus.soc_time() <= distribution(&t, width).unwrap().time(),
                "distribution at W={width}"
            );
        }
    }

    #[test]
    fn distribution_beats_multiplexing_with_many_idle_wires() {
        // At generous widths parallelism wins on d695.
        let t = table(64);
        assert!(distribution(&t, 64).unwrap().time() < multiplexing(&t, 64));
    }

    #[test]
    fn too_narrow_is_an_error() {
        let t = table(16);
        assert_eq!(
            distribution(&t, 5).unwrap_err(),
            ClassicError::TooNarrow {
                width: 5,
                cores: 10
            }
        );
    }

    #[test]
    fn out_of_range_width_is_an_error() {
        let t = table(16);
        assert_eq!(
            distribution(&t, 20).unwrap_err(),
            ClassicError::WidthOutOfRange {
                width: 20,
                max_width: 16
            }
        );
    }

    #[test]
    fn errors_display_lowercase() {
        for e in [
            ClassicError::TooNarrow {
                width: 5,
                cores: 10,
            }
            .to_string(),
            ClassicError::WidthOutOfRange {
                width: 20,
                max_width: 16,
            }
            .to_string(),
        ] {
            assert!(e.chars().next().unwrap().is_lowercase());
            assert!(!e.ends_with('.'));
        }
    }

    #[test]
    fn saturated_table_terminates() {
        // All cores flat from width 1 on: the spare-dumping path runs.
        let t = TimeTable::from_matrix(vec![vec![10, 10, 10, 10]; 3]);
        let d = distribution(&t, 4).unwrap();
        assert_eq!(d.time(), 10);
        assert_eq!(d.widths().iter().sum::<u32>(), 4);
    }
}
