//! Shared parsing for the `tamopt` command-line surfaces: the
//! `--threads` / `--time-limit` flag values (also used by the
//! `tamopt_bench` experiment harness so the two flag grammars cannot
//! drift apart), the batch-manifest request grammar and the serve
//! line protocol.
//!
//! The request-line parsers live here — not in the binary — so every
//! untrusted input surface is a library function: the binary, the
//! tests and the fuzz harness (`examples/fuzz.rs`) all exercise the
//! exact same code. SOC lookup is abstracted behind a [`SocResolver`]
//! because only the binary should touch the filesystem; library
//! callers pass a closure over [`tamopt_soc::benchmarks`] or an
//! in-memory table.

use std::time::Duration;

use tamopt_engine::SearchBudget;
use tamopt_service::{Request, RequestKind};
use tamopt_soc::Soc;

/// Maps a SOC name from a request line to a loaded [`Soc`]: the binary
/// resolves benchmark names and `.soc` paths, tests and fuzzers resolve
/// from memory.
pub type SocResolver<'a> = &'a dyn Fn(&str) -> Result<Soc, String>;

/// Parses a `--threads` value: a worker count, with `0` meaning one
/// thread per available CPU.
///
/// # Errors
///
/// A human-readable message for non-numeric input.
///
/// # Example
///
/// ```
/// assert_eq!(tamopt::cli::parse_threads("4"), Ok(4));
/// assert!(tamopt::cli::parse_threads("x").is_err());
/// ```
pub fn parse_threads(value: &str) -> Result<usize, String> {
    value
        .parse()
        .map_err(|_| "invalid --threads value".to_owned())
}

/// Parses a `--time-limit` value in (possibly fractional) seconds.
///
/// # Errors
///
/// A human-readable message for non-numeric, negative or non-finite
/// input.
///
/// # Example
///
/// ```
/// use std::time::Duration;
/// assert_eq!(
///     tamopt::cli::parse_time_limit("2.5"),
///     Ok(Duration::from_millis(2500))
/// );
/// assert!(tamopt::cli::parse_time_limit("-1").is_err());
/// assert!(tamopt::cli::parse_time_limit("inf").is_err());
/// ```
pub fn parse_time_limit(value: &str) -> Result<Duration, String> {
    let seconds: f64 = value
        .parse()
        .map_err(|_| "invalid --time-limit value".to_owned())?;
    // try_from (not from): enormous finite values must be a usage error,
    // not a panic.
    Duration::try_from_secs_f64(seconds).map_err(|_| "invalid --time-limit value".to_owned())
}

/// Parses one request line — `<soc> <width> <max-tams> [key=value]…` —
/// shared by the batch manifest and the serve protocol. The optional
/// pairs are `min-tams`, `priority`, `time-limit`, `node-budget` and
/// `kind` (`point` | `topk:K` | `frontier:LO..HI:STEP`, whose `HI`
/// must equal the positional `<width>`).
///
/// # Errors
///
/// A human-readable message naming the offending field.
pub fn parse_request_line(line: &str, resolve: SocResolver) -> Result<Request, String> {
    let mut fields = line.split_whitespace();
    let soc_name = fields.next().ok_or_else(|| "empty request".to_owned())?;
    let width: u32 = fields
        .next()
        .ok_or_else(|| "missing <width>".to_owned())?
        .parse()
        .map_err(|_| "invalid <width>".to_owned())?;
    let max_tams: u32 = fields
        .next()
        .ok_or_else(|| "missing <max-tams>".to_owned())?
        .parse()
        .map_err(|_| "invalid <max-tams>".to_owned())?;
    let soc = resolve(soc_name)?;
    let mut request = Request::new(soc, width)
        .map_err(|e| e.to_string())?
        .max_tams(max_tams);
    for option in fields {
        let (key, value) = option
            .split_once('=')
            .ok_or_else(|| format!("expected key=value, got `{option}`"))?;
        request = match key {
            "min-tams" => request.min_tams(
                value
                    .parse()
                    .map_err(|_| "invalid min-tams value".to_owned())?,
            ),
            "priority" => request.priority(
                value
                    .parse()
                    .map_err(|_| "invalid priority value".to_owned())?,
            ),
            "time-limit" => request.time_limit(parse_time_limit(value)?),
            "node-budget" => {
                let nodes: u64 = value
                    .parse()
                    .map_err(|_| "invalid node-budget value".to_owned())?;
                request.budget(SearchBudget::node_limited(nodes))
            }
            "kind" => {
                let kind: RequestKind = value.parse().map_err(|e| format!("{e}"))?;
                if let RequestKind::Frontier { max_width, .. } = kind {
                    // The positional <width> sizes the shared time
                    // table; a mismatched sweep maximum would silently
                    // re-size it, so demand they agree.
                    if max_width != width {
                        return Err(format!(
                            "frontier maximum {max_width} must equal the request width {width}"
                        ));
                    }
                }
                request.kind(kind)
            }
            other => return Err(format!("unknown option `{other}`")),
        };
    }
    Ok(request)
}

/// Parses a request manifest: one request per line, `#` comments.
///
/// # Errors
///
/// The first offending line's [`parse_request_line`] message, prefixed
/// with its 1-based line number; an empty manifest is an error too.
pub fn parse_manifest(text: &str, resolve: SocResolver) -> Result<Vec<Request>, String> {
    let mut requests = Vec::new();
    for (number, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or_default().trim();
        if line.is_empty() {
            continue;
        }
        let request = parse_request_line(line, resolve)
            .map_err(|message| format!("manifest line {}: {message}", number + 1))?;
        requests.push(request);
    }
    if requests.is_empty() {
        return Err("manifest contains no requests".to_owned());
    }
    Ok(requests)
}

/// One directive of the serve protocol.
#[derive(Debug)]
pub enum ServeLine {
    /// Submit a request (a [`parse_request_line`] payload).
    Submit(Request),
    /// Cancel the request with this id.
    Cancel(usize),
    /// Dump a deterministic JSON snapshot of the backlog (live mode
    /// only — a replayed trace has no interactive observer to serve).
    Stats,
}

/// The `@<generation>[/<shard>]` prefix of a trace line: the generation
/// barrier the event applies at, plus an optional explicit shard pin
/// (valid only under `--shards`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeTag {
    /// The generation barrier the event applies at (a lower bound).
    pub generation: u32,
    /// An explicit shard pin, from the `/<shard>` suffix.
    pub shard: Option<usize>,
}

/// Parses one serve stdin line into an optional [`ServeTag`] and a
/// directive; comments and blank lines yield `Ok(None)`.
///
/// # Errors
///
/// A human-readable message naming the offending token.
#[allow(clippy::type_complexity)]
pub fn parse_serve_line(
    raw: &str,
    resolve: SocResolver,
) -> Result<Option<(Option<ServeTag>, ServeLine)>, String> {
    let line = raw.split('#').next().unwrap_or_default().trim();
    if line.is_empty() {
        return Ok(None);
    }
    let (tag, rest) = match line.strip_prefix('@') {
        Some(tagged) => {
            let (tag, rest) = tagged
                .split_once(char::is_whitespace)
                .ok_or_else(|| "missing directive after @<generation>".to_owned())?;
            let (generation, shard) = match tag.split_once('/') {
                Some((generation, shard)) => {
                    let shard: usize = shard
                        .parse()
                        .map_err(|_| format!("invalid shard tag `@{tag}`"))?;
                    (generation, Some(shard))
                }
                None => (tag, None),
            };
            let generation: u32 = generation
                .parse()
                .map_err(|_| format!("invalid generation tag `@{tag}`"))?;
            (Some(ServeTag { generation, shard }), rest.trim())
        }
        None => (None, line),
    };
    if rest == "stats" {
        return Ok(Some((tag, ServeLine::Stats)));
    }
    let directive = match rest.strip_prefix("cancel") {
        Some(id) if id.starts_with(char::is_whitespace) => {
            let id: usize = id
                .trim()
                .parse()
                .map_err(|_| format!("invalid cancel id `{}`", id.trim()))?;
            ServeLine::Cancel(id)
        }
        _ => ServeLine::Submit(parse_request_line(rest, resolve)?),
    };
    Ok(Some((tag, directive)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamopt_soc::benchmarks;

    /// The in-memory resolver of the tests (and the fuzz harness):
    /// benchmark names only, no filesystem.
    fn resolve(name: &str) -> Result<Soc, String> {
        match name {
            "d695" => Ok(benchmarks::d695()),
            "p21241" => Ok(benchmarks::p21241()),
            "p31108" => Ok(benchmarks::p31108()),
            "p93791" => Ok(benchmarks::p93791()),
            other => Err(format!("unknown SOC `{other}`")),
        }
    }

    #[test]
    fn parses_a_manifest() {
        let requests = parse_manifest(
            "# comment\n\
             d695   32 6\n\
             \n\
             p31108 32 4 priority=1 min-tams=2  # trailing comment\n\
             d695   16 2 node-budget=100\n",
            &resolve,
        )
        .unwrap();
        assert_eq!(requests.len(), 3);
        assert_eq!(requests[0].width, 32);
        assert_eq!(requests[0].max_tams, 6);
        assert_eq!(requests[0].priority, 0);
        assert_eq!(requests[1].soc.name(), "p31108");
        assert_eq!(requests[1].priority, 1);
        assert_eq!(requests[1].min_tams, 2);
        assert_eq!(requests[2].budget.node_budget(), Some(100));
    }

    #[test]
    fn manifest_errors_name_the_line() {
        let fail = |text: &str| parse_manifest(text, &resolve).unwrap_err();
        assert!(fail("").contains("no requests"));
        assert!(fail("d695\n").contains("line 1"));
        assert!(fail("d695 32\n").contains("max-tams"));
        assert!(fail("d695 32 4 bogus\n").contains("key=value"));
        assert!(fail("d695 32 4 zoom=1\n").contains("unknown option"));
        assert!(fail("nope.soc 32 4\n").contains("line 1"));
    }

    #[test]
    fn parses_kinds_in_request_lines() {
        let r = parse_request_line("d695 32 6 kind=topk:4", &resolve).unwrap();
        assert_eq!(r.kind, RequestKind::TopK { k: 4 });
        let r = parse_request_line("d695 64 6 kind=frontier:16..64:8", &resolve).unwrap();
        assert_eq!(
            r.kind,
            RequestKind::Frontier {
                min_width: 16,
                max_width: 64,
                step: 8
            }
        );
        assert_eq!(r.width, 64);
        // The sweep maximum must agree with the positional width.
        assert!(
            parse_request_line("d695 32 6 kind=frontier:16..64:8", &resolve)
                .unwrap_err()
                .contains("must equal")
        );
        assert!(parse_request_line("d695 32 6 kind=topk:0", &resolve).is_err());
        assert!(parse_request_line("d695 32 6 kind=bogus", &resolve).is_err());
        // Width 0 is rejected at request construction now.
        assert!(parse_request_line("d695 0 6", &resolve)
            .unwrap_err()
            .contains("width"));
    }

    #[test]
    fn parses_serve_lines() {
        assert!(parse_serve_line("# comment", &resolve).unwrap().is_none());
        assert!(parse_serve_line("   ", &resolve).unwrap().is_none());
        let (tag, line) = parse_serve_line("d695 32 6 priority=2", &resolve)
            .unwrap()
            .unwrap();
        assert!(tag.is_none());
        match line {
            ServeLine::Submit(request) => {
                assert_eq!(request.width, 32);
                assert_eq!(request.priority, 2);
            }
            other => panic!("expected a submit, got {other:?}"),
        }
        let (tag, line) = parse_serve_line("@3 cancel 7 # trailing", &resolve)
            .unwrap()
            .unwrap();
        assert_eq!(
            tag,
            Some(ServeTag {
                generation: 3,
                shard: None
            })
        );
        assert!(matches!(line, ServeLine::Cancel(7)));
        let (tag, _) = parse_serve_line("@0 d695 16 2", &resolve).unwrap().unwrap();
        assert_eq!(
            tag,
            Some(ServeTag {
                generation: 0,
                shard: None
            })
        );
        let (tag, line) = parse_serve_line("@2/1 d695 16 2", &resolve)
            .unwrap()
            .unwrap();
        assert_eq!(
            tag,
            Some(ServeTag {
                generation: 2,
                shard: Some(1)
            })
        );
        assert!(matches!(line, ServeLine::Submit(_)));
    }

    #[test]
    fn parses_stats_lines() {
        let (tag, line) = parse_serve_line("stats  # comment", &resolve)
            .unwrap()
            .unwrap();
        assert!(tag.is_none());
        assert!(matches!(line, ServeLine::Stats));
        let (tag, line) = parse_serve_line("@2 stats", &resolve).unwrap().unwrap();
        assert_eq!(
            tag,
            Some(ServeTag {
                generation: 2,
                shard: None
            })
        );
        assert!(matches!(line, ServeLine::Stats));
    }

    #[test]
    fn serve_line_errors_are_precise() {
        let fail = |raw: &str| parse_serve_line(raw, &resolve).unwrap_err();
        assert!(fail("@x d695 16 2").contains("generation tag"));
        assert!(fail("@1/x d695 16 2").contains("shard tag"));
        assert!(fail("@x/0 d695 16 2").contains("generation tag"));
        assert!(fail("@5").contains("missing directive"));
        assert!(fail("cancel seven").contains("invalid cancel id"));
        assert!(fail("d695 16").contains("max-tams"));
        // `cancel` with no id falls through to request parsing and
        // errors there (no SOC named `cancel`).
        assert!(parse_serve_line("cancel", &resolve).is_err());
    }

    #[test]
    fn threads_parse() {
        assert_eq!(parse_threads("0"), Ok(0));
        assert_eq!(parse_threads("16"), Ok(16));
        assert!(parse_threads("").is_err());
        assert!(parse_threads("-1").is_err());
        assert!(parse_threads("four").is_err());
    }

    #[test]
    fn time_limit_parse() {
        assert_eq!(parse_time_limit("0"), Ok(Duration::ZERO));
        assert_eq!(parse_time_limit("1.5"), Ok(Duration::from_millis(1500)));
        assert!(parse_time_limit("nan").is_err());
        assert!(
            parse_time_limit("1e20").is_err(),
            "overflow is an error, not a panic"
        );
        assert!(parse_time_limit("inf").is_err());
        assert!(parse_time_limit("-0.1").is_err());
        assert!(parse_time_limit("abc").is_err());
    }
}
