//! Shared parsing for the `--threads` / `--time-limit` command-line
//! flags, used by the `tamopt` CLI binary and the `tamopt_bench`
//! experiment harness so the two flag grammars cannot drift apart.

use std::time::Duration;

/// Parses a `--threads` value: a worker count, with `0` meaning one
/// thread per available CPU.
///
/// # Errors
///
/// A human-readable message for non-numeric input.
///
/// # Example
///
/// ```
/// assert_eq!(tamopt::cli::parse_threads("4"), Ok(4));
/// assert!(tamopt::cli::parse_threads("x").is_err());
/// ```
pub fn parse_threads(value: &str) -> Result<usize, String> {
    value
        .parse()
        .map_err(|_| "invalid --threads value".to_owned())
}

/// Parses a `--time-limit` value in (possibly fractional) seconds.
///
/// # Errors
///
/// A human-readable message for non-numeric, negative or non-finite
/// input.
///
/// # Example
///
/// ```
/// use std::time::Duration;
/// assert_eq!(
///     tamopt::cli::parse_time_limit("2.5"),
///     Ok(Duration::from_millis(2500))
/// );
/// assert!(tamopt::cli::parse_time_limit("-1").is_err());
/// assert!(tamopt::cli::parse_time_limit("inf").is_err());
/// ```
pub fn parse_time_limit(value: &str) -> Result<Duration, String> {
    let seconds: f64 = value
        .parse()
        .map_err(|_| "invalid --time-limit value".to_owned())?;
    // try_from (not from): enormous finite values must be a usage error,
    // not a panic.
    Duration::try_from_secs_f64(seconds).map_err(|_| "invalid --time-limit value".to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_parse() {
        assert_eq!(parse_threads("0"), Ok(0));
        assert_eq!(parse_threads("16"), Ok(16));
        assert!(parse_threads("").is_err());
        assert!(parse_threads("-1").is_err());
        assert!(parse_threads("four").is_err());
    }

    #[test]
    fn time_limit_parse() {
        assert_eq!(parse_time_limit("0"), Ok(Duration::ZERO));
        assert_eq!(parse_time_limit("1.5"), Ok(Duration::from_millis(1500)));
        assert!(parse_time_limit("nan").is_err());
        assert!(
            parse_time_limit("1e20").is_err(),
            "overflow is an error, not a panic"
        );
        assert!(parse_time_limit("inf").is_err());
        assert!(parse_time_limit("-0.1").is_err());
        assert!(parse_time_limit("abc").is_err());
    }
}
