//! Power-aware wrapper/TAM co-optimization.
//!
//! The paper's related work ([9] Larsson & Peng, [13] Nourani &
//! Papachristou) integrates TAM design with *power-constrained* test
//! scheduling: concurrent tests must not draw more power than the
//! package can dissipate. Under a cap, the architecture minimizing the
//! unconstrained makespan is no longer necessarily best — a partition
//! that spreads high-power cores across TAMs may reschedule better than
//! one that merely balances testing time.
//!
//! [`co_optimize_with_power`] searches architectures *by their
//! power-capped makespan*:
//!
//! 1. every unique partition in the configured TAM-count range is
//!    evaluated with the paper's `Core_assign` heuristic (cheap,
//!    unconstrained objective), and a shortlist of the best
//!    [`PowerConfig::shortlist`] distinct partitions is kept;
//! 2. each shortlisted architecture is rescheduled with the greedy
//!    power-capped list scheduler of [`crate::schedule`], and the one
//!    with the smallest *capped* makespan wins.
//!
//! Step 2 is where the ranking can flip — the whole point of
//! co-optimizing instead of scheduling after the fact.

use tamopt_assign::{core_assign, CoreAssignOptions, CostMatrix, TamSet};
use tamopt_partition::enumerate::Partitions;
use tamopt_partition::PruneStats;
use tamopt_soc::Soc;
use tamopt_wrapper::TimeTable;

use crate::schedule::{greedy_capped, ScheduleError, TestSchedule};
use crate::{Architecture, TamOptError};

/// Configuration of the power-aware architecture search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerConfig {
    /// Maximum allowed instantaneous test power.
    pub cap: f64,
    /// Smallest number of TAMs tried.
    pub min_tams: u32,
    /// Largest number of TAMs tried.
    pub max_tams: u32,
    /// How many best-by-unconstrained-time partitions are rescheduled
    /// under the cap (step 2). Larger values search more thoroughly.
    pub shortlist: usize,
}

impl PowerConfig {
    /// A search up to `max_tams` TAMs under `cap`, with the default
    /// shortlist of 12 partitions.
    pub fn new(cap: f64, max_tams: u32) -> Self {
        PowerConfig {
            cap,
            min_tams: 1,
            max_tams: max_tams.max(1),
            shortlist: 12,
        }
    }
}

/// The result of power-aware co-optimization: a full architecture plus
/// the power-capped schedule it was selected by.
#[derive(Debug, Clone)]
pub struct PowerArchitecture {
    /// The winning architecture (wrappers, TAMs, assignment).
    pub architecture: Architecture,
    /// The power-capped schedule on that architecture.
    pub schedule: TestSchedule,
    /// The cap the schedule respects.
    pub cap: f64,
    /// Number of architectures rescheduled under the cap (step 2).
    pub rescheduled: usize,
}

impl PowerArchitecture {
    /// The capped makespan — the figure the search minimized.
    pub fn capped_makespan(&self) -> u64 {
        self.schedule.makespan()
    }

    /// The unconstrained testing time of the same architecture; the gap
    /// to [`capped_makespan`](PowerArchitecture::capped_makespan) is the
    /// price of the power cap.
    pub fn unconstrained_time(&self) -> u64 {
        self.architecture.soc_time()
    }
}

/// Co-optimizes the wrapper/TAM architecture of `soc` for the smallest
/// *power-capped* SOC testing time.
///
/// `powers[core]` is the instantaneous test power drawn while `core`
/// tests; `config.cap` is the package budget.
///
/// # Errors
///
/// * [`TamOptError::Schedule`] if `powers` is shorter than the core
///   count or a single core exceeds the cap (no schedule can exist);
/// * [`TamOptError::Wrapper`] if `total_width == 0`;
/// * assignment/partition errors from the underlying layers.
///
/// # Example
///
/// ```
/// use tamopt::power::{co_optimize_with_power, PowerConfig};
/// use tamopt::benchmarks;
///
/// # fn main() -> Result<(), tamopt::TamOptError> {
/// let soc = benchmarks::d695();
/// let powers: Vec<f64> = soc.iter().map(|c| 1.0 + c.scan_cells() as f64 / 500.0).collect();
/// let result = co_optimize_with_power(&soc, 32, &powers, &PowerConfig::new(6.0, 4))?;
/// assert!(result.capped_makespan() >= result.unconstrained_time());
/// assert!(result.schedule.peak_power(&powers) <= 6.0 + 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn co_optimize_with_power(
    soc: &Soc,
    total_width: u32,
    powers: &[f64],
    config: &PowerConfig,
) -> Result<PowerArchitecture, TamOptError> {
    let n = soc.num_cores();
    if powers.len() < n {
        return Err(ScheduleError::MissingPower { core: powers.len() }.into());
    }
    for (core, &p) in powers.iter().take(n).enumerate() {
        if p > config.cap {
            return Err(ScheduleError::CoreExceedsCap {
                core,
                power: p,
                cap: config.cap,
            }
            .into());
        }
    }
    let table = TimeTable::new(soc, total_width.max(1))?;

    // Step 1: shortlist partitions by unconstrained heuristic makespan.
    struct Candidate {
        tams: TamSet,
        assignment: Vec<usize>,
        times: Vec<u64>,
        plain_makespan: u64,
    }
    let mut shortlist: Vec<Candidate> = Vec::new();
    let mut stats = PruneStats::default();
    for b in config.min_tams..=config.max_tams.min(total_width) {
        for parts in Partitions::new(total_width, b) {
            stats.enumerated += 1;
            let tams = TamSet::new(parts)?;
            let costs = CostMatrix::from_table(&table, &tams)?;
            let outcome = core_assign(&costs, None, &CoreAssignOptions::default())
                .into_result()
                .expect("unbounded core_assign always completes");
            stats.completed += 1;
            let candidate = Candidate {
                times: (0..n)
                    .map(|c| costs.time(c, outcome.assignment()[c]))
                    .collect(),
                assignment: outcome.assignment().to_vec(),
                plain_makespan: outcome.soc_time(),
                tams,
            };
            let position = shortlist
                .binary_search_by(|probe| probe.plain_makespan.cmp(&candidate.plain_makespan))
                .unwrap_or_else(|e| e);
            if position < config.shortlist.max(1) {
                shortlist.insert(position, candidate);
                shortlist.truncate(config.shortlist.max(1));
            }
        }
    }

    // Step 2: rank the shortlist by capped makespan.
    let rescheduled = shortlist.len();
    let mut best: Option<(Candidate, TestSchedule)> = None;
    for candidate in shortlist {
        let mut pending: Vec<Vec<(usize, u64)>> = vec![Vec::new(); candidate.tams.len()];
        for (core, &tam) in candidate.assignment.iter().enumerate() {
            pending[tam].push((core, candidate.times[core]));
        }
        let schedule = greedy_capped(pending, powers, config.cap);
        if best
            .as_ref()
            .is_none_or(|(_, s)| schedule.makespan() < s.makespan())
        {
            best = Some((candidate, schedule));
        }
    }
    let (winner, schedule) = best.ok_or(TamOptError::Partition(
        tamopt_partition::PartitionError::ZeroWidth,
    ))?;

    let assignment = tamopt_assign::AssignResult::from_assignment(
        winner.assignment,
        &CostMatrix::from_table(&table, &winner.tams)?,
    );
    let heuristic_time = assignment.soc_time();
    let architecture = Architecture::assemble(
        soc.clone(),
        winner.tams,
        assignment,
        heuristic_time,
        stats,
        std::time::Duration::ZERO,
        std::time::Duration::ZERO,
    )?;
    Ok(PowerArchitecture {
        architecture,
        schedule,
        cap: config.cap,
        rescheduled,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CoOptimizer;
    use tamopt_soc::benchmarks;

    fn powers(soc: &Soc) -> Vec<f64> {
        soc.iter()
            .map(|c| 1.0 + c.scan_cells() as f64 / 500.0)
            .collect()
    }

    #[test]
    fn respects_the_cap() {
        let soc = benchmarks::d695();
        let powers = powers(&soc);
        let result = co_optimize_with_power(&soc, 32, &powers, &PowerConfig::new(6.0, 4)).unwrap();
        assert!(result.schedule.peak_power(&powers) <= 6.0 + 1e-9);
        assert!(result.capped_makespan() >= result.unconstrained_time());
        assert!(result.rescheduled >= 1);
    }

    #[test]
    fn generous_cap_matches_unconstrained_heuristic() {
        let soc = benchmarks::d695();
        let powers = powers(&soc);
        let result =
            co_optimize_with_power(&soc, 32, &powers, &PowerConfig::new(f64::MAX, 4)).unwrap();
        // No cap pressure: the capped makespan equals the architecture's
        // own unconstrained time.
        assert_eq!(result.capped_makespan(), result.unconstrained_time());
        // And it is no worse than the heuristic-only co-optimizer at the
        // same budget (same candidate space, same evaluator).
        let plain = CoOptimizer::new(soc, 32)
            .max_tams(4)
            .strategy(crate::Strategy::Heuristic)
            .run()
            .unwrap();
        assert!(result.capped_makespan() <= plain.soc_time());
    }

    #[test]
    fn tighter_caps_never_test_faster() {
        let soc = benchmarks::d695();
        let powers = powers(&soc);
        let mut previous = 0u64;
        for cap in [12.0f64, 8.0, 6.0, 5.0] {
            let result =
                co_optimize_with_power(&soc, 24, &powers, &PowerConfig::new(cap, 3)).unwrap();
            assert!(
                result.capped_makespan() >= previous,
                "cap {cap}: {} < {previous}",
                result.capped_makespan()
            );
            previous = result.capped_makespan();
        }
    }

    #[test]
    fn can_beat_schedule_after_the_fact() {
        // The co-optimized capped makespan is never worse than taking
        // the unconstrained winner and scheduling it under the cap —
        // the unconstrained winner is in the candidate pool.
        let soc = benchmarks::d695();
        let powers = powers(&soc);
        let cap = 5.0;
        let co = co_optimize_with_power(&soc, 32, &powers, &PowerConfig::new(cap, 4)).unwrap();
        let plain = CoOptimizer::new(soc, 32)
            .max_tams(4)
            .strategy(crate::Strategy::Heuristic)
            .run()
            .unwrap();
        let after_the_fact =
            crate::schedule::schedule_with_power_cap(&plain, &powers, cap).unwrap();
        assert!(co.capped_makespan() <= after_the_fact.makespan());
    }

    #[test]
    fn missing_power_is_an_error() {
        let soc = benchmarks::d695();
        let err =
            co_optimize_with_power(&soc, 16, &[1.0; 3], &PowerConfig::new(9.0, 2)).unwrap_err();
        assert!(matches!(
            err,
            TamOptError::Schedule(ScheduleError::MissingPower { core: 3 })
        ));
    }

    #[test]
    fn oversized_core_is_an_error() {
        let soc = benchmarks::d695();
        let mut powers = powers(&soc);
        powers[2] = 99.0;
        let err = co_optimize_with_power(&soc, 16, &powers, &PowerConfig::new(9.0, 2)).unwrap_err();
        assert!(matches!(
            err,
            TamOptError::Schedule(ScheduleError::CoreExceedsCap { core: 2, .. })
        ));
    }

    #[test]
    fn schedule_covers_every_core_once() {
        let soc = benchmarks::d695();
        let powers = powers(&soc);
        let result = co_optimize_with_power(&soc, 24, &powers, &PowerConfig::new(6.0, 3)).unwrap();
        let mut seen: Vec<usize> = result.schedule.entries().iter().map(|e| e.core).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..soc.num_cores()).collect::<Vec<_>>());
    }
}
