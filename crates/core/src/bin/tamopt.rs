//! `tamopt` — command-line wrapper/TAM co-optimization.
//!
//! ```text
//! USAGE:
//!   tamopt --soc <file.soc | d695 | p21241 | p31108 | p93791>
//!          --width <W> [--max-tams <B>] [--tams <B>]
//!          [--strategy two-step|two-step-ilp|heuristic|exhaustive]
//!          [--threads <N>] [--time-limit <seconds>]
//!          [--analyze] [--gantt] [--svg <out.svg>] [--rail]
//!
//!   tamopt batch <manifest> [--threads <N>] [--time-limit <seconds>]
//!                [--out <report.json>] [--store <file.tamstore>]
//!
//!   tamopt serve [--threads <N>] [--time-limit <seconds>]
//!                [--no-warm-start] [--aging <rate>]
//!                [--store <file.tamstore>] [--journal <file.tamjrnl>]
//!                [--sync always|interval[:N]|never] [--break-locks]
//!                [--max-pending <N>] [--max-inflight <N>] [--max-budget <nodes>]
//!                [--listen <ip:port> | --socket <path>]
//! ```
//!
//! Examples:
//!
//! ```text
//! tamopt --soc d695 --width 32 --max-tams 4
//! tamopt --soc p93791 --width 64 --max-tams 10 --threads 4 --time-limit 5
//! tamopt --soc my_chip.soc --width 48 --tams 3 --strategy exhaustive
//! tamopt --soc d695 --width 48 --max-tams 6 --analyze --gantt --rail
//! tamopt --soc p21241 --width 64 --max-tams 6 --svg schedule.svg
//! tamopt batch examples/batch.manifest --threads 4
//! tamopt serve --threads 4 < examples/serve.trace
//! ```
//!
//! A batch manifest holds one request per line — `<soc> <width>
//! <max-tams>` plus optional `key=value` pairs (`min-tams`, `priority`,
//! `time-limit`, `node-budget`, and `kind`: `point` (default),
//! `topk:K`, or `frontier:LO..HI:STEP` whose `HI` must equal the
//! positional `<width>`); `#` starts a comment. The report is
//! deterministic JSON (see [`tamopt::service`]): identical for every
//! `--threads` value once its `wall_clock` lines are filtered.
//!
//! `tamopt serve` runs the live daemon: it announces its wire protocol
//! with one JSON `protocol` banner line, then reads the same request
//! lines from **stdin** (plus `cancel <id>` and — live mode only —
//! `stats` lines) and streams one JSON
//! outcome line per request to stdout as results complete, submitting
//! each line the moment it is read — a high-priority request entered
//! while earlier work runs preempts the queued backlog. A final pretty
//! report follows once stdin closes. If the first line starts with
//! `@<generation>`, the whole input is a deterministic submission
//! *trace* instead (every line tagged, e.g. `@2 d695 32 6 priority=4`
//! or `@3 cancel 1`): the queue replays it, and the full stdout —
//! stream and report, minus `wall_clock*` lines — is byte-identical for
//! every `--threads` value.
//!
//! `--store <file.tamstore>` attaches the persistent warm-start store
//! (see [`tamopt::store`]) to `batch` and `serve`: incumbents and
//! compressed cost tables survive across runs, so a restarted daemon
//! finds the same winners with strictly less work. Only one process
//! may hold a store at a time (a sidecar lock file enforces this).
//!
//! `--journal <file.tamjrnl>` makes `serve` crash-safe: every accepted
//! submission and cancellation is appended to a write-ahead journal at
//! accept time, and every printed outcome seals its id. A daemon killed
//! mid-workload (`kill -9` included) replays the journal on restart and
//! deterministically resubmits exactly the accepted-but-unsealed
//! requests — recovered outcome lines (original ids) print before any
//! new input is read, and with `--store` the redo costs strictly less
//! work while finding identical winners. `--sync` picks the fsync
//! policy (`always` per record, `interval[:N]` every N records,
//! `never`); a clean shutdown compacts the journal to an empty header.
//! Trace-replay stdin (`@`-tagged) is not journalled — a trace is its
//! own deterministic recovery script. After a crash, stale sidecar
//! locks block reopening; `--break-locks` removes them first.
//!
//! Overload protection: `--max-pending <N>` bounds the accepted backlog
//! (per shard with `--shards`) — at the cap, the lowest aged effective
//! priority sheds deterministically, either as a `shed` outcome (queued
//! victim) or a typed `overloaded` error line refusing the newcomer
//! (which never drops the connection). `--max-inflight <N>` caps one
//! network client's outstanding requests; `--max-budget <nodes>`
//! clamps every request's node budget server-side (graceful
//! degradation rather than refusal).

use std::process::ExitCode;
use std::time::Duration;

use tamopt::analysis::UtilizationReport;
use tamopt::cli::{parse_manifest, parse_serve_line, parse_threads, parse_time_limit, ServeLine};
use tamopt::cost::{BusCost, GateWeights};
use tamopt::rail::{design_rails, RailConfig, RailCostModel};
use tamopt::schedule::TestSchedule;
use tamopt::service::{
    BatchConfig, JournalBinding, LiveConfig, LiveQueue, NetDirective, NetListener, NetOptions,
    NetServer, Request, RequestOutcome, RequestStatus, ShardTrace, ShardedQueue, StoreBinding,
    SubmitError, Trace, WIRE_VERSION,
};
use tamopt::soc::format::parse_soc;
use tamopt::store::{Journal, JournalRecord, Store, StoreConfig, SyncPolicy};
use tamopt::{benchmarks, CoOptimizer, Soc, Strategy};

#[derive(Debug)]
struct Args {
    soc: String,
    width: u32,
    min_tams: u32,
    max_tams: Option<u32>,
    fixed_tams: Option<u32>,
    strategy: Strategy,
    threads: usize,
    time_limit: Option<Duration>,
    analyze: bool,
    gantt: bool,
    svg: Option<String>,
    rail: bool,
}

fn usage() -> &'static str {
    "usage: tamopt --soc <file.soc|d695|p21241|p31108|p93791> --width <W> \
     [--max-tams <B>] [--tams <B>] \
     [--strategy two-step|two-step-ilp|heuristic|exhaustive] \
     [--threads <N, 0 = all CPUs>] [--time-limit <seconds>] \
     [--analyze] [--gantt] [--svg <out.svg>] [--rail]\n\
     or:    tamopt batch <manifest> [--threads <N>] [--time-limit <seconds>] \
     [--out <report.json>]"
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut soc = None;
    let mut width = None;
    let mut min_tams = 1u32;
    let mut max_tams = None;
    let mut fixed_tams = None;
    let mut strategy = Strategy::TwoStep;
    let mut threads = 1usize;
    let mut time_limit = None;
    let mut analyze = false;
    let mut gantt = false;
    let mut svg = None;
    let mut rail = false;
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--soc" => soc = Some(value("--soc")?),
            "--width" => {
                width = Some(
                    value("--width")?
                        .parse()
                        .map_err(|_| "invalid --width value".to_owned())?,
                )
            }
            "--min-tams" => {
                min_tams = value("--min-tams")?
                    .parse()
                    .map_err(|_| "invalid --min-tams value".to_owned())?
            }
            "--max-tams" => {
                max_tams = Some(
                    value("--max-tams")?
                        .parse()
                        .map_err(|_| "invalid --max-tams value".to_owned())?,
                )
            }
            "--tams" => {
                fixed_tams = Some(
                    value("--tams")?
                        .parse()
                        .map_err(|_| "invalid --tams value".to_owned())?,
                )
            }
            "--strategy" => {
                strategy = match value("--strategy")?.as_str() {
                    "two-step" => Strategy::TwoStep,
                    "two-step-ilp" => Strategy::TwoStepIlp,
                    "heuristic" => Strategy::Heuristic,
                    "exhaustive" => Strategy::Exhaustive,
                    other => return Err(format!("unknown strategy `{other}`")),
                }
            }
            "--threads" => threads = parse_threads(&value("--threads")?)?,
            "--time-limit" => time_limit = Some(parse_time_limit(&value("--time-limit")?)?),
            "--analyze" => analyze = true,
            "--gantt" => gantt = true,
            "--svg" => svg = Some(value("--svg")?),
            "--rail" => rail = true,
            "--help" | "-h" => return Err(usage().to_owned()),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    Ok(Args {
        soc: soc.ok_or_else(|| format!("--soc is required\n{}", usage()))?,
        width: width.ok_or_else(|| format!("--width is required\n{}", usage()))?,
        min_tams,
        max_tams,
        fixed_tams,
        strategy,
        threads,
        time_limit,
        analyze,
        gantt,
        svg,
        rail,
    })
}

#[derive(Debug)]
struct BatchArgs {
    manifest: String,
    threads: usize,
    time_limit: Option<Duration>,
    out: Option<String>,
    store: Option<String>,
}

fn batch_usage() -> &'static str {
    "usage: tamopt batch <manifest> [--threads <N, 0 = all CPUs>] \
     [--time-limit <seconds>] [--out <report.json>] [--store <file.tamstore>]\n\
     manifest lines: <soc> <width> <max-tams> \
     [min-tams=N] [priority=P] [time-limit=S] [node-budget=N] \
     [kind=point|topk:K|frontier:LO..HI:STEP]"
}

fn parse_batch_args(mut argv: impl Iterator<Item = String>) -> Result<BatchArgs, String> {
    let mut manifest = None;
    let mut threads = 1usize;
    let mut time_limit = None;
    let mut out = None;
    let mut store = None;
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--threads" => threads = parse_threads(&value("--threads")?)?,
            "--time-limit" => time_limit = Some(parse_time_limit(&value("--time-limit")?)?),
            "--out" => out = Some(value("--out")?),
            "--store" => store = Some(value("--store")?),
            "--help" | "-h" => return Err(batch_usage().to_owned()),
            other if other.starts_with("--") => {
                return Err(format!("unknown flag `{other}`\n{}", batch_usage()))
            }
            positional if manifest.is_none() => manifest = Some(positional.to_owned()),
            extra => return Err(format!("unexpected argument `{extra}`\n{}", batch_usage())),
        }
    }
    Ok(BatchArgs {
        manifest: manifest
            .ok_or_else(|| format!("manifest path is required\n{}", batch_usage()))?,
        threads,
        time_limit,
        out,
        store,
    })
}

/// Opens the persistent warm-start store behind `--store`, reporting
/// recovery warnings (corrupt or old-layout files open as what could be
/// salvaged) on stderr. Hard failures — a held lock, a future format
/// version, I/O errors — abort the run.
fn open_store(path: &str, config: StoreConfig) -> Result<StoreBinding, String> {
    let store =
        Store::open(path, config).map_err(|e| format!("cannot open store `{path}`: {e}"))?;
    for warning in store.warnings() {
        eprintln!("tamopt: store `{path}`: {warning}");
    }
    Ok(StoreBinding::new(store))
}

fn batch_main(argv: impl Iterator<Item = String>) -> ExitCode {
    let args = match parse_batch_args(argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let text = match std::fs::read_to_string(&args.manifest) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read `{}`: {e}", args.manifest);
            return ExitCode::FAILURE;
        }
    };
    let requests = match parse_manifest(&text, &load_soc) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let mut config = BatchConfig::with_threads(args.threads);
    if let Some(limit) = args.time_limit {
        config = config.time_limit(limit);
    }
    if let Some(path) = &args.store {
        config.store = match open_store(path, StoreConfig::default()) {
            Ok(binding) => Some(binding),
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::FAILURE;
            }
        };
    }
    let report = CoOptimizer::batch(requests, &config);
    let json = report.to_json();
    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("cannot write `{path}`: {e}");
            return ExitCode::FAILURE;
        }
        println!("batch report written to {path}");
    } else {
        print!("{json}");
    }
    let failed = report.count(RequestStatus::Failed);
    if failed > 0 {
        eprintln!("{failed} request(s) failed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

#[derive(Debug)]
struct ServeArgs {
    threads: usize,
    time_limit: Option<Duration>,
    warm_start: bool,
    aging: u32,
    /// `Some(n)` engages the fingerprint-sharded machinery (even for
    /// `n = 1`, whose outcomes carry shard stamps); `None` keeps the
    /// single-queue daemon with its byte-identical legacy output.
    shards: Option<usize>,
    store: Option<String>,
    /// `--journal <path>`: write-ahead request journal for crash-safe
    /// serving (see [`tamopt::store::Journal`]).
    journal: Option<String>,
    /// `--sync`: fsync policy for the journal (and the store's saves).
    sync: SyncPolicy,
    /// `--break-locks`: remove stale store/journal lock sidecars left
    /// by a killed process before opening.
    break_locks: bool,
    /// `--max-pending`: accepted-backlog cap (0 = unbounded; per shard
    /// with `--shards`).
    max_pending: usize,
    /// `--max-inflight`: per-client outstanding-request quota in
    /// network mode (0 = unbounded).
    max_inflight: usize,
    /// `--max-budget`: server-side clamp on every request's node
    /// budget.
    max_budget: Option<u64>,
    /// `--listen <ip:port>`: serve the line protocol to many TCP
    /// clients instead of stdin.
    listen: Option<String>,
    /// `--socket <path>`: same, over a unix-domain socket.
    socket: Option<String>,
}

fn serve_usage() -> &'static str {
    "usage: tamopt serve [--threads <N per shard, 0 = all CPUs>] [--time-limit <seconds>] \
     [--no-warm-start] [--aging <rate, 0 = strict priorities>] [--shards <N>] \
     [--store <file.tamstore>] [--journal <file.tamjrnl>] \
     [--sync always|interval[:N]|never] [--break-locks] \
     [--max-pending <N, 0 = unbounded>] [--max-inflight <N, 0 = unbounded>] \
     [--max-budget <nodes>] [--listen <ip:port> | --socket <path>]\n\
     stdin lines: <soc> <width> <max-tams> [min-tams=N] [priority=P] \
     [time-limit=S] [node-budget=N] [kind=point|topk:K|frontier:LO..HI:STEP]  \
     |  cancel <id>  |  stats (live mode only)\n\
     prefix every line with @<generation> to replay a deterministic trace; \
     with --shards, @<generation>/<shard> pins a submission to a shard\n\
     with --listen/--socket the same lines arrive per connection (no @ tags), \
     ids are per-client, and closing stdin shuts the server down"
}

fn parse_serve_args(mut argv: impl Iterator<Item = String>) -> Result<ServeArgs, String> {
    let mut threads = 1usize;
    let mut time_limit = None;
    let mut warm_start = true;
    let mut aging = 0u32;
    let mut shards = None;
    let mut store = None;
    let mut journal = None;
    let mut sync = SyncPolicy::default();
    let mut break_locks = false;
    let mut max_pending = 0usize;
    let mut max_inflight = 0usize;
    let mut max_budget = None;
    let mut listen = None;
    let mut socket = None;
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--threads" => threads = parse_threads(&value("--threads")?)?,
            "--time-limit" => time_limit = Some(parse_time_limit(&value("--time-limit")?)?),
            "--no-warm-start" => warm_start = false,
            "--aging" => {
                aging = value("--aging")?
                    .parse()
                    .map_err(|_| "invalid --aging value".to_owned())?
            }
            "--shards" => {
                let n: usize = value("--shards")?
                    .parse()
                    .map_err(|_| "invalid --shards value".to_owned())?;
                if n == 0 {
                    return Err("--shards must be at least 1".to_owned());
                }
                shards = Some(n);
            }
            "--store" => store = Some(value("--store")?),
            "--journal" => journal = Some(value("--journal")?),
            "--sync" => sync = value("--sync")?.parse()?,
            "--break-locks" => break_locks = true,
            "--max-pending" => {
                max_pending = value("--max-pending")?
                    .parse()
                    .map_err(|_| "invalid --max-pending value".to_owned())?
            }
            "--max-inflight" => {
                max_inflight = value("--max-inflight")?
                    .parse()
                    .map_err(|_| "invalid --max-inflight value".to_owned())?
            }
            "--max-budget" => {
                let nodes: u64 = value("--max-budget")?
                    .parse()
                    .map_err(|_| "invalid --max-budget value".to_owned())?;
                if nodes == 0 {
                    return Err("--max-budget must be at least 1".to_owned());
                }
                max_budget = Some(nodes);
            }
            "--listen" => listen = Some(value("--listen")?),
            "--socket" => socket = Some(value("--socket")?),
            "--help" | "-h" => return Err(serve_usage().to_owned()),
            other => return Err(format!("unknown argument `{other}`\n{}", serve_usage())),
        }
    }
    if listen.is_some() && socket.is_some() {
        return Err("--listen and --socket are mutually exclusive".to_owned());
    }
    Ok(ServeArgs {
        threads,
        time_limit,
        warm_start,
        aging,
        shards,
        store,
        journal,
        sync,
        break_locks,
        max_pending,
        max_inflight,
        max_budget,
        listen,
        socket,
    })
}

/// The live daemon behind `tamopt serve`: one flat queue or N
/// fingerprint-routed shards, behind one surface so the stdin loop is
/// queue-shape agnostic.
enum ServeQueue {
    Flat(LiveQueue),
    Sharded(ShardedQueue),
}

impl ServeQueue {
    fn start(config: LiveConfig, shards: Option<usize>) -> Self {
        match shards {
            Some(n) => ServeQueue::Sharded(ShardedQueue::start(config, n)),
            None => ServeQueue::Flat(LiveQueue::start(config)),
        }
    }

    /// Submits a request, returning its **global** id.
    fn submit(&self, request: Request) -> Result<usize, SubmitError> {
        match self {
            ServeQueue::Flat(q) => q.submit(request).map(|(id, _)| id.index()),
            ServeQueue::Sharded(q) => q.submit(request).map(|(id, _)| id.index()),
        }
    }

    /// Submits pinned to `shard` when both the pin and the sharding
    /// exist — the recovery path re-running a journalled request where
    /// it was originally accepted; routes normally otherwise.
    fn submit_pinned(&self, shard: Option<usize>, request: Request) -> Result<usize, SubmitError> {
        match (self, shard) {
            (ServeQueue::Sharded(q), Some(shard)) => {
                q.submit_pinned(shard, request).map(|(id, _)| id.index())
            }
            _ => self.submit(request),
        }
    }

    /// The shard that accepted global id `id` (`None` when flat) — the
    /// accept-time stamp the journal records.
    fn shard_of(&self, id: usize) -> Option<usize> {
        match self {
            ServeQueue::Flat(_) => None,
            ServeQueue::Sharded(q) => q.shard_of(id.into()),
        }
    }

    fn cancel(&self, id: usize) -> bool {
        match self {
            ServeQueue::Flat(q) => q.cancel(id.into()),
            ServeQueue::Sharded(q) => q.cancel(id.into()),
        }
    }

    fn stats_json(&self) -> String {
        match self {
            ServeQueue::Flat(q) => q.stats().to_json(),
            ServeQueue::Sharded(q) => q.stats().to_json(),
        }
    }

    fn recv_outcome(&self) -> Option<tamopt::service::RequestOutcome> {
        match self {
            ServeQueue::Flat(q) => q.recv_outcome(),
            ServeQueue::Sharded(q) => q.recv_outcome(),
        }
    }

    fn shutdown(&self) -> Option<tamopt::service::BatchReport> {
        match self {
            ServeQueue::Flat(q) => q.shutdown(),
            ServeQueue::Sharded(q) => q.shutdown(),
        }
    }
}

fn serve_main(argv: impl Iterator<Item = String>) -> ExitCode {
    let args = match parse_serve_args(argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let mut config = LiveConfig::with_threads(args.threads);
    config.warm_start = args.warm_start;
    config.aging = args.aging;
    config.max_pending = args.max_pending;
    if let Some(limit) = args.time_limit {
        config = config.time_limit(limit);
    }
    // A SIGKILLed daemon leaves its sidecar locks behind; the operator
    // opts into reclaiming them (a *live* holder would lose the lock
    // too — breaking is explicitly not automatic).
    if args.break_locks {
        if let Some(path) = &args.store {
            match Store::break_lock(path) {
                Ok(true) => eprintln!("tamopt: store `{path}`: broke a stale lock"),
                Ok(false) => {}
                Err(e) => eprintln!("tamopt: store `{path}`: cannot break lock: {e}"),
            }
        }
        if let Some(path) = &args.journal {
            match Journal::break_lock(path) {
                Ok(true) => eprintln!("tamopt: journal `{path}`: broke a stale lock"),
                Ok(false) => {}
                Err(e) => eprintln!("tamopt: journal `{path}`: cannot break lock: {e}"),
            }
        }
    }
    if let Some(path) = &args.store {
        let store_config = StoreConfig {
            sync: args.sync,
            ..StoreConfig::default()
        };
        config.store = match open_store(path, store_config) {
            Ok(binding) => Some(binding),
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::FAILURE;
            }
        };
    }

    // Announce the wire protocol before any outcome streams: consumers
    // (and the replay comparator) key their parsing off this version.
    println!("{{\"protocol\": \"tamopt-serve\", \"v\": {WIRE_VERSION}}}");

    // Crash safety: open the write-ahead journal and — before reading
    // any input — redo whatever a previous process accepted but never
    // sealed. Recovered outcome lines print first, with original ids.
    let journal = match &args.journal {
        None => None,
        Some(path) => match Journal::open(path, args.sync) {
            Err(e) => {
                eprintln!("cannot open journal `{path}`: {e}");
                return ExitCode::FAILURE;
            }
            Ok(opened) => {
                for warning in &opened.warnings {
                    eprintln!("tamopt: journal `{path}`: {warning}");
                }
                let binding = JournalBinding::new(opened.journal);
                if let Err(msg) = recover_journal(&opened.records, &binding, &config, &args) {
                    eprintln!("{msg}");
                    return ExitCode::FAILURE;
                }
                Some(binding)
            }
        },
    };

    if args.listen.is_some() || args.socket.is_some() {
        return serve_net(&args, config, journal);
    }

    use std::io::BufRead as _;
    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines().enumerate();

    // The first directive decides the mode: `@`-tagged → deterministic
    // trace replay; untagged → live submission as lines arrive. The raw
    // line text rides along — it is what the journal records.
    let first = loop {
        match lines.next() {
            None => break None,
            Some((number, line)) => {
                let line = match line {
                    Ok(l) => l,
                    Err(e) => {
                        eprintln!("serve: cannot read stdin: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                match parse_serve_line(&line, &load_soc) {
                    Ok(None) => continue,
                    Ok(Some(directive)) => break Some((number, line, directive)),
                    Err(msg) => {
                        eprintln!("serve: line {}: {msg}", number + 1);
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
    };

    let report = match first {
        // Empty input: an empty trace still owes a valid (empty) report.
        None => match args.shards {
            Some(shards) => ShardedQueue::replay(ShardTrace::new(), config, shards).1,
            None => LiveQueue::replay(Trace::new(), config).1,
        },
        Some((first_number, _, (Some(first_tag), first_directive))) => {
            // Trace mode: collect the whole input, then replay. A trace
            // is its own deterministic recovery script, so it is not
            // journalled (recovery of a *previous* crash already ran).
            if journal.is_some() {
                eprintln!("serve: trace replay is not journalled (the trace itself is the recovery script)");
            }
            if matches!(first_directive, ServeLine::Stats) {
                eprintln!(
                    "serve: line {}: `stats` is only available in live mode",
                    first_number + 1
                );
                return ExitCode::FAILURE;
            }
            let mut events = vec![(first_number, first_tag, first_directive)];
            for (number, line) in lines {
                let line = match line {
                    Ok(l) => l,
                    Err(e) => {
                        eprintln!("serve: cannot read stdin: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                match parse_serve_line(&line, &load_soc) {
                    Ok(None) => {}
                    Ok(Some((_, ServeLine::Stats))) => {
                        eprintln!(
                            "serve: line {}: `stats` is only available in live mode",
                            number + 1
                        );
                        return ExitCode::FAILURE;
                    }
                    Ok(Some((Some(tag), directive))) => {
                        events.push((number, tag, directive));
                    }
                    Ok(Some((None, _))) => {
                        eprintln!(
                            "serve: line {}: missing @<generation> tag (trace mode)",
                            number + 1
                        );
                        return ExitCode::FAILURE;
                    }
                    Err(msg) => {
                        eprintln!("serve: line {}: {msg}", number + 1);
                        return ExitCode::FAILURE;
                    }
                }
            }
            let (stream, report) = match args.shards {
                Some(shards) => {
                    let mut trace = ShardTrace::new();
                    for (_, tag, directive) in events {
                        trace = match directive {
                            ServeLine::Submit(mut request) => {
                                clamp_budget(&mut request, args.max_budget);
                                match tag.shard {
                                    Some(shard) => {
                                        trace.submit_pinned_at(tag.generation, shard, request)
                                    }
                                    None => trace.submit_at(tag.generation, request),
                                }
                            }
                            // A cancel routes to the owner of the id;
                            // any shard pin on it is redundant.
                            ServeLine::Cancel(id) => trace.cancel_at(tag.generation, id),
                            ServeLine::Stats => unreachable!("rejected during collection"),
                        };
                    }
                    ShardedQueue::replay(trace, config, shards)
                }
                None => {
                    let mut trace = Trace::new();
                    for (number, tag, directive) in events {
                        if tag.shard.is_some() {
                            eprintln!(
                                "serve: line {}: @<generation>/<shard> tags require --shards",
                                number + 1
                            );
                            return ExitCode::FAILURE;
                        }
                        trace = match directive {
                            ServeLine::Submit(mut request) => {
                                clamp_budget(&mut request, args.max_budget);
                                trace.submit_at(tag.generation, request)
                            }
                            ServeLine::Cancel(id) => trace.cancel_at(tag.generation, id),
                            ServeLine::Stats => unreachable!("rejected during collection"),
                        };
                    }
                    LiveQueue::replay(trace, config)
                }
            };
            for outcome in &stream {
                print!("{}", outcome.to_json_line());
            }
            report
        }
        Some((first_number, first_line, (None, first_directive))) => {
            // Live mode: submit each line as it is read; outcomes stream
            // concurrently. Parse errors are reported and skipped — work
            // already submitted keeps running — but fail the exit code.
            let queue = ServeQueue::start(config, args.shards);
            let mut parse_errors = 0u32;
            let report = std::thread::scope(|scope| {
                let printer = scope.spawn(|| {
                    use std::io::Write as _;
                    let mut out = std::io::stdout().lock();
                    while let Some(outcome) = queue.recv_outcome() {
                        let _ = out.write_all(outcome.to_json_line().as_bytes());
                        let _ = out.flush();
                        // Seal after the line reached the output: a
                        // crash in between redoes the request rather
                        // than losing it.
                        if let Some(journal) = &journal {
                            journal.sealed(outcome.index);
                        }
                    }
                });
                let apply = |number: usize, line: &str, directive: ServeLine, errors: &mut u32| {
                    match directive {
                        ServeLine::Submit(mut request) => {
                            clamp_budget(&mut request, args.max_budget);
                            match queue.submit(request) {
                                Ok(id) => {
                                    if let Some(journal) = &journal {
                                        journal.submit(id, None, queue.shard_of(id), line);
                                    }
                                }
                                Err(SubmitError::ShutDown) => {
                                    eprintln!("serve: line {}: queue is shut down", number + 1);
                                    *errors += 1;
                                }
                                // Load shedding is an operational state,
                                // not an input error: report it without
                                // failing the run.
                                Err(SubmitError::Overloaded) => {
                                    eprintln!(
                                        "serve: line {}: overloaded — request shed (backlog at \
                                     max-pending)",
                                        number + 1
                                    );
                                }
                            }
                        }
                        ServeLine::Cancel(id) => {
                            if queue.cancel(id) {
                                if let Some(journal) = &journal {
                                    journal.cancel(id);
                                }
                            } else {
                                eprintln!("serve: line {}: unknown request id {id}", number + 1);
                                *errors += 1;
                            }
                        }
                        ServeLine::Stats => {
                            println!("{}", queue.stats_json());
                        }
                    }
                };
                apply(
                    first_number,
                    &first_line,
                    first_directive,
                    &mut parse_errors,
                );
                for (number, line) in lines {
                    let line = match line {
                        Ok(l) => l,
                        Err(e) => {
                            eprintln!("serve: cannot read stdin: {e}");
                            parse_errors += 1;
                            break;
                        }
                    };
                    match parse_serve_line(&line, &load_soc) {
                        Ok(None) => {}
                        Ok(Some((None, directive))) => {
                            apply(number, &line, directive, &mut parse_errors);
                        }
                        Ok(Some((Some(_), _))) => {
                            eprintln!(
                                "serve: line {}: @<generation> tags are only valid when the \
                                 whole input is a trace",
                                number + 1
                            );
                            parse_errors += 1;
                        }
                        Err(msg) => {
                            eprintln!("serve: line {}: {msg}", number + 1);
                            parse_errors += 1;
                        }
                    }
                }
                let report = queue.shutdown().expect("first shutdown");
                printer.join().expect("printer thread");
                report
            });
            if parse_errors > 0 {
                eprintln!("{parse_errors} invalid line(s)");
                // Even a failed run drained its queue and sealed every
                // outcome — a clean shutdown as far as the journal goes.
                if let Some(journal) = &journal {
                    journal.compact();
                }
                print!("{}", report.to_json());
                return ExitCode::FAILURE;
            }
            report
        }
    };

    // Clean shutdown: every accepted id is sealed, so the journal owes
    // nothing — truncate it to an empty header.
    if let Some(journal) = &journal {
        journal.compact();
    }
    print!("{}", report.to_json());
    let failed = report.count(RequestStatus::Failed);
    if failed > 0 {
        eprintln!("{failed} request(s) failed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Applies the server-side `--max-budget` clamp to one request: the
/// request keeps its own node budget if tighter, graceful degradation
/// instead of refusal otherwise.
fn clamp_budget(request: &mut Request, max_budget: Option<u64>) {
    if let Some(nodes) = max_budget {
        request.budget = request.budget.clone().and_node_budget(nodes);
    }
}

/// Redoes a crashed daemon's accepted-but-unsealed requests, so a
/// `kill -9` mid-workload loses nothing: parses each journaled line,
/// resubmits the live ones in original-id order through a fresh queue
/// of the same shape, prints every outcome with its original id and
/// client stamp, and seals it. Requests that were cancelled before the
/// crash are not re-run — their `cancelled` outcome is synthesized
/// directly — so the output still closes every accepted id exactly
/// once. With `--store`, the redo finds identical winners with strictly
/// fewer completed evaluations.
fn recover_journal(
    records: &[JournalRecord],
    journal: &JournalBinding,
    config: &LiveConfig,
    args: &ServeArgs,
) -> Result<(), String> {
    let pending = tamopt::store::journal::unsealed(records);
    if pending.is_empty() {
        return Ok(());
    }
    eprintln!(
        "tamopt: journal: recovering {} accepted-but-unsealed request(s)",
        pending.len()
    );
    // Parse every line up front: a journaled line was accepted by a
    // previous run, so a failure means a foreign or hand-edited file —
    // refuse loudly rather than dropping an accepted request.
    let mut live = Vec::new();
    let mut outcomes = Vec::new();
    for r in &pending {
        let parsed = parse_serve_line(&r.line, &load_soc)
            .map_err(|e| format!("journal: request {}: {e}", r.id))?;
        let Some((None, ServeLine::Submit(mut request))) = parsed else {
            return Err(format!(
                "journal: request {}: journaled line is not a submission",
                r.id
            ));
        };
        clamp_budget(&mut request, args.max_budget);
        if r.cancelled {
            outcomes.push(RequestOutcome {
                index: r.id as usize,
                client: r.client.map(|c| c as usize),
                shard: r.shard.map(|s| s as usize),
                soc: request.soc.name().to_owned(),
                width: request.width,
                min_tams: request.min_tams,
                max_tams: request.max_tams,
                priority: request.priority,
                kind: request.kind,
                status: RequestStatus::Cancelled,
                result: None,
                results: Vec::new(),
                error: None,
            });
        } else {
            live.push((r, request));
        }
    }
    if !live.is_empty() {
        // Same queue shape (flat or sharded) and the same warm store,
        // but no backlog cap: everything here was accepted once
        // already, so recovery must never shed it.
        let mut recovery_config = config.clone();
        recovery_config.max_pending = 0;
        let queue = ServeQueue::start(recovery_config, args.shards);
        let mut owner = std::collections::HashMap::new();
        for (r, request) in &live {
            // Pin to the accept-time shard stamp, so the redo runs
            // where the original did.
            let id = queue
                .submit_pinned(r.shard.map(|s| s as usize), request.clone())
                .map_err(|e| format!("journal: request {}: resubmission failed: {e}", r.id))?;
            owner.insert(id, *r);
        }
        for _ in 0..owner.len() {
            let mut outcome = queue
                .recv_outcome()
                .ok_or_else(|| "journal: recovery queue died mid-replay".to_owned())?;
            let original = owner[&outcome.index];
            outcome.index = original.id as usize;
            outcome.client = original.client.map(|c| c as usize);
            outcomes.push(outcome);
        }
        let _ = queue.shutdown();
    }
    outcomes.sort_by_key(|o| o.index);
    for outcome in &outcomes {
        print!("{}", outcome.to_json_line());
        journal.sealed(outcome.index);
    }
    Ok(())
}

/// The network front-end behind `serve --listen` / `--socket`: bind,
/// announce the endpoint on stdout, serve clients until **stdin**
/// closes (the operator's shutdown signal), then print the
/// client-stamped final report.
fn serve_net(args: &ServeArgs, config: LiveConfig, journal: Option<JournalBinding>) -> ExitCode {
    let listener = match (&args.listen, &args.socket) {
        (Some(addr), None) => NetListener::tcp(addr),
        (None, Some(path)) => NetListener::unix(path.as_str()),
        _ => unreachable!("parse_serve_args enforces exclusivity"),
    };
    let listener = match listener {
        Ok(listener) => listener,
        Err(err) => {
            eprintln!("serve: cannot bind: {err}");
            return ExitCode::FAILURE;
        }
    };
    // Port 0 resolves at bind time; announce the real endpoint so
    // clients (and tests) can discover it.
    println!("{{\"listening\": {}}}", json_escape(listener.addr()));

    let max_budget = args.max_budget;
    let parser: tamopt::service::LineParser =
        std::sync::Arc::new(move |line: &str| match parse_serve_line(line, &load_soc)? {
            None => Ok(None),
            Some((Some(_tag), _)) => Err(
                "@<generation> tags are only valid in trace mode, not over the network".to_owned(),
            ),
            Some((None, ServeLine::Submit(mut request))) => {
                clamp_budget(&mut request, max_budget);
                Ok(Some(NetDirective::Submit(request)))
            }
            Some((None, ServeLine::Cancel(id))) => Ok(Some(NetDirective::Cancel(id))),
            Some((None, ServeLine::Stats)) => Ok(Some(NetDirective::Stats)),
        });
    let options = NetOptions {
        max_inflight: args.max_inflight,
        journal: journal.clone(),
    };
    let server = NetServer::start_with_options(config, args.shards, listener, parser, options);

    // Stdin is not a request source in network mode — it is the
    // lifetime: the server runs until it closes.
    let _ = std::io::copy(&mut std::io::stdin().lock(), &mut std::io::sink());

    let report = server.shutdown().expect("first shutdown");
    // Clean shutdown: every accepted id was sealed by the router, so
    // the journal owes nothing — truncate it to an empty header.
    if let Some(journal) = &journal {
        journal.compact();
    }
    print!("{}", report.to_json());
    let failed = report.count(RequestStatus::Failed);
    if failed > 0 {
        eprintln!("{failed} request(s) failed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Escapes `value` as a JSON string literal (quotes included).
fn json_escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn load_soc(name: &str) -> Result<Soc, String> {
    match name {
        "d695" => Ok(benchmarks::d695()),
        "p21241" => Ok(benchmarks::p21241()),
        "p31108" => Ok(benchmarks::p31108()),
        "p93791" => Ok(benchmarks::p93791()),
        path => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
            parse_soc(&text).map_err(|e| format!("cannot parse `{path}`: {e}"))
        }
    }
}

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1).peekable();
    if argv.peek().map(String::as_str) == Some("batch") {
        argv.next();
        return batch_main(argv);
    }
    if argv.peek().map(String::as_str) == Some("serve") {
        argv.next();
        return serve_main(argv);
    }
    let args = match parse_args(argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let soc = match load_soc(&args.soc) {
        Ok(s) => s,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let mut optimizer = CoOptimizer::new(soc.clone(), args.width)
        .min_tams(args.min_tams)
        .strategy(args.strategy)
        .threads(args.threads);
    if let Some(limit) = args.time_limit {
        optimizer = optimizer.time_limit(limit);
    }
    if let Some(b) = args.fixed_tams {
        optimizer = optimizer.exact_tams(b);
    } else if let Some(b) = args.max_tams {
        optimizer = optimizer.max_tams(b);
    }
    let arch = match optimizer.run() {
        Ok(arch) => arch,
        Err(e) => {
            eprintln!("optimization failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", arch.report());
    if args.analyze {
        println!();
        print!("{}", UtilizationReport::new(&arch));
        let cost = BusCost::of(&arch);
        println!(
            "hardware: {} boundary cells, {} mux2 equivalents, {} wire attachments \
             ({:.0} gate equivalents)",
            cost.boundary_cells,
            cost.mux_equivalents,
            cost.wire_attachments,
            cost.gate_equivalents(&GateWeights::default())
        );
    }
    if args.gantt {
        println!();
        print!("{}", TestSchedule::serial(&arch).gantt(72));
    }
    if let Some(path) = &args.svg {
        let svg = TestSchedule::serial(&arch).to_svg(900);
        if let Err(e) = std::fs::write(path, svg) {
            eprintln!("cannot write `{path}`: {e}");
            return ExitCode::FAILURE;
        }
        println!("\nschedule written to {path}");
    }
    if args.rail {
        let max_rails = args.fixed_tams.or(args.max_tams).unwrap_or(6);
        let comparison = RailCostModel::new(&soc, args.width)
            .map_err(|e| e.to_string())
            .and_then(|model| {
                design_rails(&model, args.width, &RailConfig::up_to_rails(max_rails))
                    .map_err(|e| e.to_string())
            });
        match comparison {
            Ok(design) => {
                println!();
                print!("{}", design.report());
                println!(
                    "  bypass tax   : {:+.1} % vs the test-bus architecture",
                    (design.soc_time() as f64 / arch.soc_time() as f64 - 1.0) * 100.0
                );
            }
            Err(e) => {
                eprintln!("testrail comparison failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Result<Args, String> {
        parse_args(list.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_minimal() {
        let a = args(&["--soc", "d695", "--width", "32"]).unwrap();
        assert_eq!(a.soc, "d695");
        assert_eq!(a.width, 32);
        assert_eq!(a.min_tams, 1);
        assert!(a.max_tams.is_none());
        assert!(a.fixed_tams.is_none());
        assert_eq!(a.strategy, Strategy::TwoStep);
        assert_eq!(a.threads, 1);
        assert!(a.time_limit.is_none());
    }

    #[test]
    fn parses_threads_and_time_limit() {
        let a = args(&[
            "--soc",
            "d695",
            "--width",
            "32",
            "--threads",
            "4",
            "--time-limit",
            "2.5",
        ])
        .unwrap();
        assert_eq!(a.threads, 4);
        assert_eq!(a.time_limit, Some(Duration::from_millis(2500)));
    }

    #[test]
    fn rejects_bad_threads_and_time_limit() {
        assert!(args(&["--soc", "d695", "--width", "8", "--threads", "x"]).is_err());
        assert!(args(&["--soc", "d695", "--width", "8", "--time-limit", "-1"]).is_err());
        assert!(args(&["--soc", "d695", "--width", "8", "--time-limit", "inf"]).is_err());
    }

    #[test]
    fn parses_everything() {
        let a = args(&[
            "--soc",
            "chip.soc",
            "--width",
            "48",
            "--min-tams",
            "2",
            "--max-tams",
            "6",
            "--strategy",
            "exhaustive",
            "--analyze",
            "--gantt",
            "--svg",
            "out.svg",
            "--rail",
        ])
        .unwrap();
        assert_eq!(a.min_tams, 2);
        assert_eq!(a.max_tams, Some(6));
        assert_eq!(a.strategy, Strategy::Exhaustive);
        assert!(a.analyze);
        assert!(a.gantt);
        assert_eq!(a.svg.as_deref(), Some("out.svg"));
        assert!(a.rail);
    }

    #[test]
    fn report_flags_default_off() {
        let a = args(&["--soc", "d695", "--width", "32"]).unwrap();
        assert!(!a.analyze && !a.gantt && !a.rail);
        assert!(a.svg.is_none());
    }

    #[test]
    fn rejects_missing_required() {
        assert!(args(&["--width", "32"])
            .unwrap_err()
            .contains("--soc is required"));
        assert!(args(&["--soc", "d695"])
            .unwrap_err()
            .contains("--width is required"));
    }

    #[test]
    fn rejects_bad_values() {
        assert!(args(&["--soc", "d695", "--width", "x"]).is_err());
        assert!(args(&["--soc", "d695", "--width", "8", "--strategy", "magic"]).is_err());
        assert!(args(&["--soc", "d695", "--width", "8", "--frobnicate"]).is_err());
        assert!(args(&["--soc"]).is_err());
    }

    #[test]
    fn strategy_names() {
        for (name, expected) in [
            ("two-step", Strategy::TwoStep),
            ("two-step-ilp", Strategy::TwoStepIlp),
            ("heuristic", Strategy::Heuristic),
            ("exhaustive", Strategy::Exhaustive),
        ] {
            let a = args(&["--soc", "d695", "--width", "8", "--strategy", name]).unwrap();
            assert_eq!(a.strategy, expected, "{name}");
        }
    }

    #[test]
    fn load_soc_knows_benchmarks() {
        assert_eq!(load_soc("d695").unwrap().num_cores(), 10);
        assert_eq!(load_soc("p93791").unwrap().num_cores(), 32);
        assert!(load_soc("/nonexistent/x.soc").is_err());
    }

    fn batch_args(list: &[&str]) -> Result<BatchArgs, String> {
        parse_batch_args(list.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_batch_flags() {
        let a = batch_args(&["jobs.manifest", "--threads", "4", "--time-limit", "2"]).unwrap();
        assert_eq!(a.manifest, "jobs.manifest");
        assert_eq!(a.threads, 4);
        assert_eq!(a.time_limit, Some(Duration::from_secs(2)));
        assert!(a.out.is_none());
        assert!(a.store.is_none(), "persistence is opt-in");
        let b = batch_args(&["jobs.manifest", "--out", "report.json"]).unwrap();
        assert_eq!(b.out.as_deref(), Some("report.json"));
        let c = batch_args(&["jobs.manifest", "--store", "warm.tamstore"]).unwrap();
        assert_eq!(c.store.as_deref(), Some("warm.tamstore"));
    }

    #[test]
    fn batch_rejects_bad_usage() {
        assert!(batch_args(&[]).unwrap_err().contains("manifest path"));
        assert!(batch_args(&["a", "b"]).is_err(), "two positionals");
        assert!(batch_args(&["a", "--frobnicate"]).is_err());
        assert!(batch_args(&["a", "--threads", "x"]).is_err());
        assert!(batch_args(&["a", "--store"]).is_err(), "missing value");
    }

    #[test]
    fn parses_serve_flags() {
        let a = parse_serve_args(
            ["--threads", "4", "--no-warm-start"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(a.threads, 4);
        assert!(!a.warm_start);
        assert!(a.time_limit.is_none());
        assert_eq!(a.aging, 0, "strict priorities by default");
        let b = parse_serve_args(
            ["--time-limit", "2.5", "--aging", "3"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert!(b.warm_start);
        assert_eq!(b.time_limit, Some(Duration::from_millis(2500)));
        assert_eq!(b.aging, 3);
        assert!(parse_serve_args(["--aging", "-1"].iter().map(|s| s.to_string())).is_err());
        assert!(parse_serve_args(["--frobnicate".to_string()].into_iter()).is_err());
        assert!(parse_serve_args(["positional".to_string()].into_iter()).is_err());
        assert!(a.shards.is_none(), "sharding is opt-in");
        let c = parse_serve_args(["--shards", "4"].iter().map(|s| s.to_string())).unwrap();
        assert_eq!(c.shards, Some(4));
        assert!(
            parse_serve_args(["--shards", "0"].iter().map(|s| s.to_string()))
                .unwrap_err()
                .contains("at least 1")
        );
        assert!(parse_serve_args(["--shards", "x"].iter().map(|s| s.to_string())).is_err());
        let d =
            parse_serve_args(["--store", "warm.tamstore"].iter().map(|s| s.to_string())).unwrap();
        assert_eq!(d.store.as_deref(), Some("warm.tamstore"));
        assert!(a.store.is_none(), "persistence is opt-in");
        assert!(parse_serve_args(["--store".to_string()].into_iter()).is_err());
    }

    #[test]
    fn parses_network_serve_flags() {
        let a =
            parse_serve_args(["--listen", "127.0.0.1:0"].iter().map(|s| s.to_string())).unwrap();
        assert_eq!(a.listen.as_deref(), Some("127.0.0.1:0"));
        assert!(a.socket.is_none());
        let b = parse_serve_args(
            ["--socket", "/tmp/tamopt.sock", "--shards", "2"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(b.socket.as_deref(), Some("/tmp/tamopt.sock"));
        assert_eq!(b.shards, Some(2));
        assert!(parse_serve_args(
            ["--listen", "127.0.0.1:0", "--socket", "/tmp/x.sock"]
                .iter()
                .map(|s| s.to_string())
        )
        .unwrap_err()
        .contains("mutually exclusive"));
        assert!(parse_serve_args(["--listen".to_string()].into_iter()).is_err());
        assert!(parse_serve_args(["--socket".to_string()].into_iter()).is_err());
    }

    #[test]
    fn parses_crash_safety_serve_flags() {
        let a = parse_serve_args(std::iter::empty()).unwrap();
        assert!(a.journal.is_none(), "journaling is opt-in");
        assert_eq!(a.sync, SyncPolicy::default());
        assert!(!a.break_locks);
        assert_eq!(a.max_pending, 0, "no backlog cap by default");
        assert_eq!(a.max_inflight, 0, "no client quota by default");
        assert!(a.max_budget.is_none());
        let b = parse_serve_args(
            [
                "--journal",
                "req.tamjrnl",
                "--sync",
                "interval:4",
                "--break-locks",
                "--max-pending",
                "16",
                "--max-inflight",
                "8",
                "--max-budget",
                "100000",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(b.journal.as_deref(), Some("req.tamjrnl"));
        assert_eq!(b.sync, SyncPolicy::Interval(4));
        assert!(b.break_locks);
        assert_eq!(b.max_pending, 16);
        assert_eq!(b.max_inflight, 8);
        assert_eq!(b.max_budget, Some(100_000));
        let c = parse_serve_args(["--sync", "always"].iter().map(|s| s.to_string())).unwrap();
        assert_eq!(c.sync, SyncPolicy::Always);
        assert!(parse_serve_args(["--sync", "sometimes"].iter().map(|s| s.to_string())).is_err());
        assert!(parse_serve_args(["--journal".to_string()].into_iter()).is_err());
        assert!(parse_serve_args(["--max-pending", "x"].iter().map(|s| s.to_string())).is_err());
        assert!(
            parse_serve_args(["--max-budget", "0"].iter().map(|s| s.to_string()))
                .unwrap_err()
                .contains("at least 1")
        );
    }

    #[test]
    fn json_escape_matches_the_wire_format() {
        assert_eq!(json_escape("127.0.0.1:7171"), "\"127.0.0.1:7171\"");
        assert_eq!(json_escape("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_escape("\u{1}"), "\"\\u0001\"");
    }

    // The request-line / manifest / serve-protocol grammars are parsed
    // (and tested) in `tamopt::cli`; the binary only supplies the
    // filesystem-aware SOC resolver, covered by `load_soc_knows_benchmarks`
    // and the manifest test below.

    #[test]
    fn manifest_resolves_through_load_soc() {
        let requests = parse_manifest("d695 32 6\np93791 64 8\n", &load_soc).unwrap();
        assert_eq!(requests.len(), 2);
        assert_eq!(requests[1].soc.name(), "p93791");
        assert!(parse_manifest("nope.soc 32 4\n", &load_soc)
            .unwrap_err()
            .contains("line 1"));
    }
}
