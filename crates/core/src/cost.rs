//! First-order DFT area accounting for test architectures.
//!
//! Testing time is only half of the wrapper/TAM trade-off; the other
//! half is silicon. This module provides a deliberately first-order
//! hardware cost model so the architectures produced by this workspace
//! (and the test-bus vs TestRail choice of the paper vs its
//! reference [11]) can be compared in gate-equivalents, not only
//! cycles:
//!
//! * **wrapper boundary cells** — one cell per functional terminal
//!   (bidirs pay on both paths), independent of the TAM architecture;
//! * **test bus** ([`BusCost`]) — a TAM of width `w` shared by `k`
//!   cores needs a `k:1` multiplexer per wire on the return path,
//!   counted as `w·(k-1)` 2:1-mux equivalents, plus `w` wires fanned
//!   out to `k` wrappers;
//! * **TestRail** ([`RailCost`]) — no multiplexers (wrappers are
//!   daisy-chained), but every wrapper carries one bypass flip-flop per
//!   rail wire: `w` flops per core on a `w`-wide rail.
//!
//! The model counts *architecture-dependent* hardware; clocking, test
//! control and the cores' own scan cells are common to all candidates
//! and omitted.
//!
//! # Example
//!
//! ```
//! use tamopt::cost::{BusCost, RailCost};
//! use tamopt::rail::{design_rails, RailConfig, RailCostModel};
//! use tamopt::{benchmarks, CoOptimizer};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let soc = benchmarks::d695();
//! let bus = CoOptimizer::new(soc.clone(), 32).max_tams(4).run()?;
//! let model = RailCostModel::new(&soc, 32)?;
//! let rail = design_rails(&model, 32, &RailConfig::up_to_rails(4))?;
//! let bus_cost = BusCost::of(&bus);
//! let rail_cost = RailCost::of(&rail, &soc);
//! // Rails trade multiplexers for bypass flops.
//! assert_eq!(bus_cost.bypass_flops, 0);
//! assert_eq!(rail_cost.mux_equivalents, 0);
//! assert!(rail_cost.bypass_flops > 0);
//! # Ok(())
//! # }
//! ```

use tamopt_rail::RailDesign;
use tamopt_soc::Soc;

use crate::Architecture;

/// Gate-equivalent weights of the primitive elements, used by the
/// `gate_equivalents` summaries. First-order standard-cell figures: a
/// scan-capable boundary cell ≈ a flop + mux, a bypass flop ≈ a flop,
/// a 2:1 mux ≈ half a flop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateWeights {
    /// Gate equivalents per wrapper boundary cell.
    pub boundary_cell: f64,
    /// Gate equivalents per bypass flip-flop.
    pub bypass_flop: f64,
    /// Gate equivalents per 2:1 multiplexer.
    pub mux2: f64,
}

impl Default for GateWeights {
    fn default() -> Self {
        GateWeights {
            boundary_cell: 10.0,
            bypass_flop: 6.0,
            mux2: 3.0,
        }
    }
}

/// Architecture-dependent hardware of a test-bus architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusCost {
    /// Wrapper boundary cells over all cores (terminal cells; bidirs
    /// counted on both the input and output path).
    pub boundary_cells: u64,
    /// 2:1-multiplexer equivalents on the TAM return paths:
    /// `Σ_tams width · (cores_on_tam − 1)`.
    pub mux_equivalents: u64,
    /// Bypass flip-flops (always 0 in the bus model; present so bus and
    /// rail costs share a vocabulary).
    pub bypass_flops: u64,
    /// Wire-attachment count: `Σ_cores width(tam(core))` — how many
    /// wire-to-wrapper connections must be routed.
    pub wire_attachments: u64,
}

/// Architecture-dependent hardware of a TestRail architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RailCost {
    /// Wrapper boundary cells over all cores (same as the bus model —
    /// the wrapper itself does not change).
    pub boundary_cells: u64,
    /// 2:1-multiplexer equivalents (always 0: rails daisy-chain).
    pub mux_equivalents: u64,
    /// Bypass flip-flops: one per rail wire per core,
    /// `Σ_cores width(rail(core))`.
    pub bypass_flops: u64,
    /// Wire-attachment count: identical to the bypass flop count (each
    /// rail wire enters and leaves every wrapper on the rail).
    pub wire_attachments: u64,
}

fn boundary_cells(soc: &Soc) -> u64 {
    soc.iter()
        .map(|c| u64::from(c.input_cells()) + u64::from(c.output_cells()))
        .sum()
}

impl BusCost {
    /// Accounts the hardware of `architecture`.
    pub fn of(architecture: &Architecture) -> Self {
        let mut population = vec![0u64; architecture.num_tams()];
        let mut wire_attachments = 0u64;
        for &tam in architecture.assignment.assignment() {
            population[tam] += 1;
            wire_attachments += u64::from(architecture.tams.width(tam));
        }
        let mux_equivalents = population
            .iter()
            .enumerate()
            .map(|(tam, &k)| u64::from(architecture.tams.width(tam)) * k.saturating_sub(1))
            .sum();
        BusCost {
            boundary_cells: boundary_cells(&architecture.soc),
            mux_equivalents,
            bypass_flops: 0,
            wire_attachments,
        }
    }

    /// Weighted gate-equivalent summary.
    pub fn gate_equivalents(&self, weights: &GateWeights) -> f64 {
        self.boundary_cells as f64 * weights.boundary_cell
            + self.bypass_flops as f64 * weights.bypass_flop
            + self.mux_equivalents as f64 * weights.mux2
    }
}

impl RailCost {
    /// Accounts the hardware of `design` for `soc`.
    ///
    /// # Panics
    ///
    /// Panics if `design` was not produced for `soc` (core counts
    /// disagree).
    pub fn of(design: &RailDesign, soc: &Soc) -> Self {
        assert_eq!(
            design.assignment.assignment().len(),
            soc.num_cores(),
            "design matches the SOC"
        );
        let bypass_flops: u64 = design
            .assignment
            .assignment()
            .iter()
            .map(|&rail| u64::from(design.rails.width(rail)))
            .sum();
        RailCost {
            boundary_cells: boundary_cells(soc),
            mux_equivalents: 0,
            bypass_flops,
            wire_attachments: bypass_flops,
        }
    }

    /// Weighted gate-equivalent summary.
    pub fn gate_equivalents(&self, weights: &GateWeights) -> f64 {
        self.boundary_cells as f64 * weights.boundary_cell
            + self.bypass_flops as f64 * weights.bypass_flop
            + self.mux_equivalents as f64 * weights.mux2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rail::{design_rails, RailConfig, RailCostModel};
    use crate::CoOptimizer;
    use tamopt_soc::benchmarks;

    fn soc() -> Soc {
        benchmarks::d695()
    }

    fn bus(width: u32, max_tams: u32) -> Architecture {
        CoOptimizer::new(soc(), width)
            .max_tams(max_tams)
            .run()
            .unwrap()
    }

    #[test]
    fn boundary_cells_are_architecture_independent() {
        let narrow = BusCost::of(&bus(16, 2));
        let wide = BusCost::of(&bus(48, 5));
        assert_eq!(narrow.boundary_cells, wide.boundary_cells);
        // d695: Σ inputs + outputs (no bidirs).
        let expected: u64 = soc()
            .iter()
            .map(|c| u64::from(c.inputs()) + u64::from(c.outputs()))
            .sum();
        assert_eq!(narrow.boundary_cells, expected);
    }

    #[test]
    fn mux_count_matches_hand_computation() {
        let a = bus(32, 3);
        let cost = BusCost::of(&a);
        let mut expected = 0u64;
        for tam in 0..a.num_tams() {
            let k = a
                .assignment
                .assignment()
                .iter()
                .filter(|&&t| t == tam)
                .count() as u64;
            expected += u64::from(a.tams.width(tam)) * k.saturating_sub(1);
        }
        assert_eq!(cost.mux_equivalents, expected);
        assert_eq!(cost.bypass_flops, 0);
    }

    #[test]
    fn single_core_tams_need_no_muxes() {
        // With as many TAMs as cores every TAM holds one core.
        let small = tamopt_soc::Soc::builder("two")
            .core(
                tamopt_soc::Core::builder("a")
                    .inputs(4)
                    .outputs(4)
                    .scan_chains([8])
                    .patterns(10)
                    .build()
                    .unwrap(),
            )
            .core(
                tamopt_soc::Core::builder("b")
                    .inputs(4)
                    .outputs(4)
                    .scan_chains([8])
                    .patterns(10)
                    .build()
                    .unwrap(),
            )
            .build()
            .unwrap();
        let a = CoOptimizer::new(small, 8).exact_tams(2).run().unwrap();
        let cost = BusCost::of(&a);
        assert_eq!(cost.mux_equivalents, 0);
    }

    #[test]
    fn rail_cost_trades_muxes_for_bypass_flops() {
        let model = RailCostModel::new(&soc(), 32).unwrap();
        let design = design_rails(&model, 32, &RailConfig::up_to_rails(4)).unwrap();
        let cost = RailCost::of(&design, &soc());
        assert_eq!(cost.mux_equivalents, 0);
        assert!(cost.bypass_flops > 0);
        assert_eq!(cost.wire_attachments, cost.bypass_flops);
        // Hand recomputation.
        let expected: u64 = design
            .assignment
            .assignment()
            .iter()
            .map(|&r| u64::from(design.rails.width(r)))
            .sum();
        assert_eq!(cost.bypass_flops, expected);
    }

    #[test]
    fn gate_equivalents_weight_the_right_fields() {
        let cost = BusCost {
            boundary_cells: 10,
            mux_equivalents: 4,
            bypass_flops: 0,
            wire_attachments: 0,
        };
        let w = GateWeights {
            boundary_cell: 1.0,
            bypass_flop: 100.0,
            mux2: 2.0,
        };
        assert_eq!(cost.gate_equivalents(&w), 10.0 + 8.0);
        let rail = RailCost {
            boundary_cells: 10,
            mux_equivalents: 0,
            bypass_flops: 3,
            wire_attachments: 3,
        };
        assert_eq!(rail.gate_equivalents(&w), 10.0 + 300.0);
    }

    #[test]
    fn default_weights_are_ordered_sensibly() {
        let w = GateWeights::default();
        assert!(w.boundary_cell > w.bypass_flop);
        assert!(w.bypass_flop > w.mux2);
    }

    #[test]
    #[should_panic(expected = "matches the SOC")]
    fn rail_cost_rejects_mismatched_soc() {
        let model = RailCostModel::new(&soc(), 16).unwrap();
        let design = design_rails(&model, 16, &RailConfig::up_to_rails(2)).unwrap();
        let other = benchmarks::p21241();
        let _ = RailCost::of(&design, &other);
    }
}
