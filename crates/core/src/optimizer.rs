use std::time::{Duration, Instant};

use tamopt_assign::exact::ExactConfig;
use tamopt_assign::ilp::IlpAssignConfig;
use tamopt_engine::{ParallelConfig, SearchBudget};
use tamopt_partition::exhaustive::{self, ExhaustiveConfig};
use tamopt_partition::pipeline::{co_optimize, FinalStep, PipelineConfig};
use tamopt_partition::PruneStats;
use tamopt_soc::Soc;
use tamopt_wrapper::TimeTable;

use crate::{Architecture, TamOptError};

/// Solution strategy of the [`CoOptimizer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// The paper's methodology: `Partition_evaluate` + one exact
    /// re-optimization of the assignment (branch-and-bound). Default.
    #[default]
    TwoStep,
    /// Two-step, but the final pass uses the literal ILP model of the
    /// paper's Section 3.2 (slower; kept for fidelity).
    TwoStepIlp,
    /// Heuristic only — skip the final exact step.
    Heuristic,
    /// The exhaustive exact baseline of the paper's reference [8]:
    /// solve every unique partition exactly. Slow for many TAMs.
    Exhaustive,
}

/// High-level builder for wrapper/TAM co-optimization.
///
/// Wraps the whole stack — wrapper time tables, partition search, core
/// assignment, final exact step — behind one call.
///
/// # Example
///
/// ```
/// use tamopt::{benchmarks, CoOptimizer, Strategy};
///
/// # fn main() -> Result<(), tamopt::TamOptError> {
/// let soc = benchmarks::d695();
/// let arch = CoOptimizer::new(soc, 24)
///     .max_tams(3)
///     .strategy(Strategy::TwoStep)
///     .run()?;
/// assert!(arch.num_tams() <= 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CoOptimizer {
    soc: Soc,
    total_width: u32,
    min_tams: u32,
    max_tams: u32,
    strategy: Strategy,
    time_limit: Option<Duration>,
    budget: SearchBudget,
    threads: usize,
}

impl CoOptimizer {
    /// Creates an optimizer for `soc` with `total_width` TAM wires.
    ///
    /// Defaults: explore 1 to 10 TAMs (the paper found more than ten
    /// TAMs "less useful for testing time minimization"), two-step
    /// strategy, no time limit.
    pub fn new(soc: Soc, total_width: u32) -> Self {
        CoOptimizer {
            soc,
            total_width,
            min_tams: 1,
            max_tams: 10.min(total_width.max(1)),
            strategy: Strategy::TwoStep,
            time_limit: None,
            budget: SearchBudget::unlimited(),
            threads: 1,
        }
    }

    /// Sets the largest TAM count to consider.
    pub fn max_tams(mut self, max_tams: u32) -> Self {
        self.max_tams = max_tams;
        self
    }

    /// Sets the smallest TAM count to consider (default 1).
    pub fn min_tams(mut self, min_tams: u32) -> Self {
        self.min_tams = min_tams;
        self
    }

    /// Fixes the TAM count (problem *P_PAW*).
    pub fn exact_tams(mut self, tams: u32) -> Self {
        self.min_tams = tams;
        self.max_tams = tams;
        self
    }

    /// Selects the solution [`Strategy`].
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Caps the total wall-clock budget of the optimization — the
    /// partition scan *and* the exact components (final step /
    /// exhaustive per-partition solves) share one deadline, which
    /// starts when [`run`](Self::run) is called.
    pub fn time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// Bounds the optimization by an existing [`SearchBudget`]
    /// (deadline, node budget and/or cancellation flag). Combined with
    /// [`time_limit`](Self::time_limit) the tighter limit wins.
    pub fn budget(mut self, budget: SearchBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the worker-thread count for the partition search (`0` = one
    /// per available CPU; default 1). Results are bit-identical for
    /// every thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Runs a whole queue of co-optimization requests on one shared
    /// worker pool — the batch entry point of the service layer
    /// ([`tamopt_service`], re-exported as [`crate::service`]).
    ///
    /// Requests dispatch in priority order under the intersection of
    /// the batch-global budget and each request's own; the report lists
    /// outcomes in submission order and is bit-identical (minus
    /// wall-clock fields) for every
    /// [`BatchConfig::threads`](crate::service::BatchConfig) value.
    /// Per-request failures become
    /// [`RequestStatus::Failed`](crate::service::RequestStatus)
    /// outcomes, never errors. Callers that need per-request
    /// cancellation handles should drive a
    /// [`Batch`](crate::service::Batch) directly.
    ///
    /// # Example
    ///
    /// ```
    /// use tamopt::service::{BatchConfig, Request};
    /// use tamopt::{benchmarks, CoOptimizer};
    ///
    /// let report = CoOptimizer::batch(
    ///     [
    ///         Request::new(benchmarks::d695(), 16).max_tams(2),
    ///         Request::new(benchmarks::d695(), 24).max_tams(3),
    ///     ],
    ///     &BatchConfig::with_threads(2),
    /// );
    /// assert!(report.complete);
    /// assert!(report.outcomes[0].soc_time().is_some());
    /// ```
    pub fn batch(
        requests: impl IntoIterator<Item = tamopt_service::Request>,
        config: &tamopt_service::BatchConfig,
    ) -> tamopt_service::BatchReport {
        tamopt_service::run_batch(requests, config)
    }

    /// Starts a live serving daemon — the long-running front-end of the
    /// service layer ([`tamopt_service::live`], re-exported as
    /// [`crate::service`]).
    ///
    /// Unlike [`CoOptimizer::batch`], the returned
    /// [`LiveQueue`](crate::service::LiveQueue) accepts
    /// [`submit`](crate::service::LiveQueue::submit) calls *while
    /// requests execute*: the dispatcher re-reads the priority queue at
    /// every generation barrier (so a high-priority submission preempts
    /// queued work), streams outcomes as they complete, and warm-starts
    /// repeat SOCs from a per-queue incumbent cache. Call
    /// [`shutdown`](crate::service::LiveQueue::shutdown) to drain the
    /// backlog and collect the final report. For reproducible runs, see
    /// [`LiveQueue::replay`](crate::service::LiveQueue::replay).
    ///
    /// # Example
    ///
    /// ```
    /// use tamopt::service::{LiveConfig, Request};
    /// use tamopt::{benchmarks, CoOptimizer};
    ///
    /// let queue = CoOptimizer::serve(LiveConfig::default());
    /// queue
    ///     .submit(Request::new(benchmarks::d695(), 16).max_tams(2))
    ///     .unwrap();
    /// let report = queue.shutdown().unwrap();
    /// assert!(report.complete);
    /// ```
    pub fn serve(config: tamopt_service::LiveConfig) -> tamopt_service::LiveQueue {
        tamopt_service::LiveQueue::start(config)
    }

    /// Runs the optimization and assembles the [`Architecture`].
    ///
    /// # Errors
    ///
    /// Validation and solver errors of the underlying layers
    /// ([`TamOptError`]).
    pub fn run(&self) -> Result<Architecture, TamOptError> {
        // The clock starts here: one deadline bounds wrapper-table
        // construction aside, every search step end to end.
        let mut budget = self.budget.clone();
        if let Some(limit) = self.time_limit {
            budget = budget.and_time_limit(limit);
        }
        let table = TimeTable::new(&self.soc, self.total_width.max(1))?;
        match self.strategy {
            Strategy::Exhaustive => self.run_exhaustive(&table, budget),
            _ => self.run_pipeline(&table, budget),
        }
    }

    fn run_pipeline(
        &self,
        table: &TimeTable,
        budget: SearchBudget,
    ) -> Result<Architecture, TamOptError> {
        let final_step = match self.strategy {
            Strategy::Heuristic => FinalStep::None,
            Strategy::TwoStepIlp => FinalStep::Ilp(IlpAssignConfig::default()),
            _ => FinalStep::BranchBound(ExactConfig::default()),
        };
        let config = PipelineConfig {
            min_tams: self.min_tams,
            max_tams: self.max_tams,
            final_step,
            budget,
            parallel: ParallelConfig::with_threads(self.threads),
            ..PipelineConfig::up_to_tams(self.max_tams)
        };
        let co = co_optimize(table, self.total_width, &config)?;
        Architecture::assemble(
            self.soc.clone(),
            co.tams.clone(),
            co.optimized.clone(),
            co.heuristic.soc_time(),
            co.stats,
            co.evaluate_time,
            co.final_time,
        )
    }

    fn run_exhaustive(
        &self,
        table: &TimeTable,
        budget: SearchBudget,
    ) -> Result<Architecture, TamOptError> {
        let start = Instant::now();
        let config = ExhaustiveConfig {
            min_tams: self.min_tams,
            max_tams: self.max_tams,
            per_partition: ExactConfig::default(),
            budget,
            parallel: ParallelConfig::with_threads(self.threads),
            ..ExhaustiveConfig::up_to_tams(self.max_tams)
        };
        let best = exhaustive::solve(table, self.total_width, &config)?;
        let elapsed = start.elapsed();
        // Architecture statistics stay in partition units (matching the
        // pipeline strategies): a per-partition solve that hit its limit
        // counts as aborted, not completed.
        let stats = PruneStats {
            enumerated: best.partitions_solved,
            completed: best.partitions_proven,
            aborted: best.partitions_solved - best.partitions_proven,
        };
        let heuristic_time = best.result.soc_time();
        Architecture::assemble(
            self.soc.clone(),
            best.tams.clone(),
            best.result.clone(),
            heuristic_time,
            stats,
            elapsed,
            Duration::ZERO,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamopt_soc::benchmarks;

    #[test]
    fn defaults_are_sane() {
        let opt = CoOptimizer::new(benchmarks::d695(), 16);
        let arch = opt.run().unwrap();
        assert!(arch.num_tams() >= 1 && arch.num_tams() <= 10);
        assert_eq!(arch.tams.total_width(), 16);
    }

    #[test]
    fn strategies_rank_correctly() {
        let soc = benchmarks::d695();
        let heuristic = CoOptimizer::new(soc.clone(), 24)
            .max_tams(3)
            .strategy(Strategy::Heuristic)
            .run()
            .unwrap();
        let two_step = CoOptimizer::new(soc.clone(), 24)
            .max_tams(3)
            .strategy(Strategy::TwoStep)
            .run()
            .unwrap();
        let exhaustive = CoOptimizer::new(soc, 24)
            .max_tams(3)
            .strategy(Strategy::Exhaustive)
            .run()
            .unwrap();
        assert!(two_step.soc_time() <= heuristic.soc_time());
        assert!(exhaustive.soc_time() <= two_step.soc_time());
    }

    #[test]
    fn exact_tams_pins_the_count() {
        let arch = CoOptimizer::new(benchmarks::d695(), 24)
            .exact_tams(2)
            .run()
            .unwrap();
        assert_eq!(arch.num_tams(), 2);
    }

    #[test]
    fn zero_width_is_an_error() {
        let err = CoOptimizer::new(benchmarks::d695(), 0).run().unwrap_err();
        assert!(matches!(err, TamOptError::Partition(_)));
    }

    #[test]
    fn time_limit_bounds_step_one_end_to_end() {
        // Unbounded, p93791 at W = 64 with up to 10 TAMs enumerates
        // hundreds of thousands of partitions in step 1. A zero time
        // limit must stop after the first generation — well under a
        // second — and still return a valid architecture.
        let start = Instant::now();
        let arch = CoOptimizer::new(benchmarks::p93791(), 64)
            .max_tams(10)
            .time_limit(Duration::ZERO)
            .run()
            .unwrap();
        assert!(
            arch.stats.enumerated <= 64,
            "step 1 must be budget-truncated, enumerated {}",
            arch.stats.enumerated
        );
        assert_eq!(arch.tams.total_width(), 64);
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "the deadline must bound total runtime"
        );
    }

    #[test]
    fn budget_builder_bounds_the_run() {
        let arch = CoOptimizer::new(benchmarks::d695(), 48)
            .max_tams(6)
            .budget(SearchBudget::node_limited(50))
            .run()
            .unwrap();
        // Whole generations only: 32 + 64 dispatched partitions.
        assert_eq!(arch.stats.enumerated, 96);
        assert_eq!(arch.tams.total_width(), 48);
    }

    #[test]
    fn threads_do_not_change_the_architecture() {
        let reference = CoOptimizer::new(benchmarks::d695(), 32)
            .max_tams(4)
            .run()
            .unwrap();
        for threads in [2, 8] {
            let arch = CoOptimizer::new(benchmarks::d695(), 32)
                .max_tams(4)
                .threads(threads)
                .run()
                .unwrap();
            assert_eq!(arch.tams, reference.tams, "threads {threads}");
            assert_eq!(arch.soc_time(), reference.soc_time());
            assert_eq!(arch.stats, reference.stats);
        }
    }

    #[test]
    fn ilp_strategy_matches_branch_bound() {
        let soc = benchmarks::d695();
        let bb = CoOptimizer::new(soc.clone(), 16)
            .exact_tams(2)
            .run()
            .unwrap();
        let ilp = CoOptimizer::new(soc, 16)
            .exact_tams(2)
            .strategy(Strategy::TwoStepIlp)
            .run()
            .unwrap();
        assert_eq!(bb.soc_time(), ilp.soc_time());
    }
}
