use std::ops::RangeInclusive;
use std::time::{Duration, Instant};

use tamopt_assign::exact::ExactConfig;
use tamopt_assign::ilp::IlpAssignConfig;
use tamopt_engine::{ParallelConfig, SearchBudget};
use tamopt_partition::exhaustive::{self, ExhaustiveConfig};
use tamopt_partition::pipeline::{
    co_optimize_frontier, co_optimize_top_k, FinalStep, PipelineConfig,
};
use tamopt_partition::{PruneStats, RankedPartition};
use tamopt_soc::Soc;
use tamopt_wrapper::{pareto, TimeTable};

use crate::{Architecture, FrontierPoint, ParetoFrontier, RankedArchitectures, TamOptError};

/// Solution strategy of the [`CoOptimizer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// The paper's methodology: `Partition_evaluate` + one exact
    /// re-optimization of the assignment (branch-and-bound). Default.
    #[default]
    TwoStep,
    /// Two-step, but the final pass uses the literal ILP model of the
    /// paper's Section 3.2 (slower; kept for fidelity).
    TwoStepIlp,
    /// Heuristic only — skip the final exact step.
    Heuristic,
    /// The exhaustive exact baseline of the paper's reference [8]:
    /// solve every unique partition exactly. Slow for many TAMs.
    Exhaustive,
}

/// High-level builder for wrapper/TAM co-optimization.
///
/// Wraps the whole stack — wrapper time tables, partition search, core
/// assignment, final exact step — behind one call.
///
/// # Example
///
/// ```
/// use tamopt::{benchmarks, CoOptimizer, Strategy};
///
/// # fn main() -> Result<(), tamopt::TamOptError> {
/// let soc = benchmarks::d695();
/// let arch = CoOptimizer::new(soc, 24)
///     .max_tams(3)
///     .strategy(Strategy::TwoStep)
///     .run()?;
/// assert!(arch.num_tams() <= 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CoOptimizer {
    soc: Soc,
    total_width: u32,
    min_tams: u32,
    max_tams: u32,
    strategy: Strategy,
    time_limit: Option<Duration>,
    budget: SearchBudget,
    threads: usize,
}

impl CoOptimizer {
    /// Creates an optimizer for `soc` with `total_width` TAM wires.
    ///
    /// Defaults: explore 1 to 10 TAMs (the paper found more than ten
    /// TAMs "less useful for testing time minimization"), two-step
    /// strategy, no time limit.
    pub fn new(soc: Soc, total_width: u32) -> Self {
        CoOptimizer {
            soc,
            total_width,
            min_tams: 1,
            max_tams: 10.min(total_width.max(1)),
            strategy: Strategy::TwoStep,
            time_limit: None,
            budget: SearchBudget::unlimited(),
            threads: 1,
        }
    }

    /// Sets the largest TAM count to consider.
    pub fn max_tams(mut self, max_tams: u32) -> Self {
        self.max_tams = max_tams;
        self
    }

    /// Sets the smallest TAM count to consider (default 1).
    pub fn min_tams(mut self, min_tams: u32) -> Self {
        self.min_tams = min_tams;
        self
    }

    /// Fixes the TAM count (problem *P_PAW*).
    pub fn exact_tams(mut self, tams: u32) -> Self {
        self.min_tams = tams;
        self.max_tams = tams;
        self
    }

    /// Selects the solution [`Strategy`].
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Caps the total wall-clock budget of the optimization — the
    /// partition scan *and* the exact components (final step /
    /// exhaustive per-partition solves) share one deadline, which
    /// starts when [`run`](Self::run) is called.
    pub fn time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// Bounds the optimization by an existing [`SearchBudget`]
    /// (deadline, node budget and/or cancellation flag). Combined with
    /// [`time_limit`](Self::time_limit) the tighter limit wins.
    pub fn budget(mut self, budget: SearchBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the worker-thread count for the partition search (`0` = one
    /// per available CPU; default 1). Results are bit-identical for
    /// every thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Runs a whole queue of co-optimization requests on one shared
    /// worker pool — the batch entry point of the service layer
    /// ([`tamopt_service`], re-exported as [`crate::service`]).
    ///
    /// Requests dispatch in priority order under the intersection of
    /// the batch-global budget and each request's own; the report lists
    /// outcomes in submission order and is bit-identical (minus
    /// wall-clock fields) for every
    /// [`BatchConfig::threads`](crate::service::BatchConfig) value.
    /// Per-request failures become
    /// [`RequestStatus::Failed`](crate::service::RequestStatus)
    /// outcomes, never errors. Callers that need per-request
    /// cancellation handles should drive a
    /// [`Batch`](crate::service::Batch) directly.
    ///
    /// # Example
    ///
    /// ```
    /// use tamopt::service::{BatchConfig, Request};
    /// use tamopt::{benchmarks, CoOptimizer};
    ///
    /// let report = CoOptimizer::batch(
    ///     [
    ///         Request::new(benchmarks::d695(), 16).unwrap().max_tams(2),
    ///         Request::new(benchmarks::d695(), 24).unwrap().max_tams(3),
    ///     ],
    ///     &BatchConfig::with_threads(2),
    /// );
    /// assert!(report.complete);
    /// assert!(report.outcomes[0].soc_time().is_some());
    /// ```
    pub fn batch(
        requests: impl IntoIterator<Item = tamopt_service::Request>,
        config: &tamopt_service::BatchConfig,
    ) -> tamopt_service::BatchReport {
        tamopt_service::run_batch(requests, config)
    }

    /// Starts a live serving daemon — the long-running front-end of the
    /// service layer ([`tamopt_service::live`], re-exported as
    /// [`crate::service`]).
    ///
    /// Unlike [`CoOptimizer::batch`], the returned
    /// [`LiveQueue`](crate::service::LiveQueue) accepts
    /// [`submit`](crate::service::LiveQueue::submit) calls *while
    /// requests execute*: the dispatcher re-reads the priority queue at
    /// every generation barrier (so a high-priority submission preempts
    /// queued work), streams outcomes as they complete, and warm-starts
    /// repeat SOCs from a per-queue incumbent cache. Call
    /// [`shutdown`](crate::service::LiveQueue::shutdown) to drain the
    /// backlog and collect the final report. For reproducible runs, see
    /// [`LiveQueue::replay`](crate::service::LiveQueue::replay).
    ///
    /// # Example
    ///
    /// ```
    /// use tamopt::service::{LiveConfig, Request};
    /// use tamopt::{benchmarks, CoOptimizer};
    ///
    /// let queue = CoOptimizer::serve(LiveConfig::default());
    /// queue
    ///     .submit(Request::new(benchmarks::d695(), 16).unwrap().max_tams(2))
    ///     .unwrap();
    /// let report = queue.shutdown().unwrap();
    /// assert!(report.complete);
    /// ```
    pub fn serve(config: tamopt_service::LiveConfig) -> tamopt_service::LiveQueue {
        tamopt_service::LiveQueue::start(config)
    }

    /// Runs the optimization and assembles the [`Architecture`] — the
    /// *point* query: one `(SOC, W)`, one best architecture. The
    /// [`top_k`](Self::top_k) and [`frontier`](Self::frontier) queries
    /// answer the neighboring questions from the same builder.
    ///
    /// # Errors
    ///
    /// Validation and solver errors of the underlying layers
    /// ([`TamOptError`]).
    pub fn run(&self) -> Result<Architecture, TamOptError> {
        // A rank-1 ranking *is* the point query — same code path, same
        // bits (the partition layer's k=1 scan is the single-incumbent
        // scan).
        let mut ranked = self.top_k(1)?;
        Ok(ranked
            .entries
            .pop()
            .expect("a successful point query yields one architecture"))
    }

    /// Runs the optimization keeping the `k` best architectures — the
    /// *top-K* query.
    ///
    /// One shared partition scan ranks the `k` best partitions (bounded
    /// by the running K-th-best time instead of the single incumbent);
    /// the final exact step then re-optimizes *each* of them, so the
    /// ranking is by final testing time. Fewer than `k` entries are
    /// returned only when the partition space itself is smaller. With
    /// `k = 1` this is [`run`](Self::run) exactly.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    ///
    /// # Example
    ///
    /// ```
    /// use tamopt::{benchmarks, CoOptimizer};
    ///
    /// # fn main() -> Result<(), tamopt::TamOptError> {
    /// let ranked = CoOptimizer::new(benchmarks::d695(), 24)
    ///     .max_tams(3)
    ///     .top_k(4)?;
    /// assert!(ranked.len() <= 4);
    /// assert!(ranked.best().soc_time() <= ranked.entries.last().unwrap().soc_time());
    /// # Ok(())
    /// # }
    /// ```
    pub fn top_k(&self, k: usize) -> Result<RankedArchitectures, TamOptError> {
        // The clock starts here: one deadline bounds, wrapper-table
        // construction aside, every search step end to end.
        let budget = self.effective_budget();
        let table = TimeTable::new(&self.soc, self.total_width.max(1))?;
        match self.strategy {
            Strategy::Exhaustive => self
                .rank_exhaustive(&table, self.total_width, budget, k)
                .map(|(ranked, _proven)| ranked),
            _ => self.rank_pipeline(&table, self.total_width, budget, k),
        }
    }

    /// Sweeps total TAM widths `widths` (inclusive, stride `step`) — the
    /// *frontier* query: the testing-time-versus-width trade-off curve
    /// of the paper's design-space tables from one call.
    ///
    /// The builder's own `total_width` is ignored; one wrapper time
    /// table at the sweep's maximum width serves every point, and the
    /// pipeline strategies share cost-matrix memoization plus
    /// warm-start bounds across widths. Work sharing never changes a
    /// winner: each point is bit-identical to an independent
    /// [`run`](Self::run) at its width, for every thread count.
    ///
    /// # Errors
    ///
    /// [`TamOptError::InvalidFrontier`] when `step == 0`, the range is
    /// empty, or it starts at width 0; otherwise the errors of
    /// [`run`](Self::run).
    ///
    /// # Example
    ///
    /// ```
    /// use tamopt::{benchmarks, CoOptimizer};
    ///
    /// # fn main() -> Result<(), tamopt::TamOptError> {
    /// let frontier = CoOptimizer::new(benchmarks::d695(), 32)
    ///     .max_tams(4)
    ///     .frontier(16..=32, 8)?;
    /// assert_eq!(frontier.len(), 3); // W = 16, 24, 32
    /// print!("{}", frontier.report());
    /// # Ok(())
    /// # }
    /// ```
    pub fn frontier(
        &self,
        widths: RangeInclusive<u32>,
        step: u32,
    ) -> Result<ParetoFrontier, TamOptError> {
        let (lo, hi) = (*widths.start(), *widths.end());
        if step == 0 || lo == 0 || lo > hi {
            return Err(TamOptError::InvalidFrontier {
                min_width: lo,
                max_width: hi,
                step,
            });
        }
        let swept: Vec<u32> = (lo..=hi).step_by(step as usize).collect();
        let budget = self.effective_budget();
        let table = TimeTable::new(&self.soc, hi)?;

        let (entries, complete) = match self.strategy {
            Strategy::Exhaustive => {
                // No cross-width sharing for the exact baseline: one
                // independent exhaustive solve per width.
                let mut entries = Vec::with_capacity(swept.len());
                let mut complete = true;
                for &w in &swept {
                    let (mut ranked, proven) =
                        self.rank_exhaustive(&table, w, budget.clone(), 1)?;
                    complete &= proven;
                    entries.push((w, ranked.entries.pop().expect("rank 1 exists")));
                }
                (entries, complete)
            }
            _ => {
                let config = self.pipeline_config(budget);
                let sweep_parallel = ParallelConfig::with_threads(self.threads);
                let frontier = co_optimize_frontier(&table, &swept, &config, &sweep_parallel)?;
                let complete = frontier.complete;
                let mut entries = Vec::with_capacity(frontier.points.len());
                for (w, co) in frontier.points {
                    entries.push((
                        w,
                        Architecture::assemble(
                            self.soc.clone(),
                            co.tams,
                            co.optimized,
                            co.heuristic.soc_time(),
                            co.stats,
                            co.evaluate_time,
                            co.final_time,
                        )?,
                    ));
                }
                (entries, complete)
            }
        };

        let points = entries
            .into_iter()
            .map(|(width, architecture)| FrontierPoint {
                width,
                architecture,
                lower_bound: pareto::bottleneck_at_width(&table, width),
            })
            .collect();
        Ok(ParetoFrontier { points, complete })
    }

    fn effective_budget(&self) -> SearchBudget {
        let mut budget = self.budget.clone();
        if let Some(limit) = self.time_limit {
            budget = budget.and_time_limit(limit);
        }
        budget
    }

    fn pipeline_config(&self, budget: SearchBudget) -> PipelineConfig {
        let final_step = match self.strategy {
            Strategy::Heuristic => FinalStep::None,
            Strategy::TwoStepIlp => FinalStep::Ilp(IlpAssignConfig::default()),
            _ => FinalStep::BranchBound(ExactConfig::default()),
        };
        PipelineConfig {
            min_tams: self.min_tams,
            max_tams: self.max_tams,
            final_step,
            budget,
            parallel: ParallelConfig::with_threads(self.threads),
            ..PipelineConfig::up_to_tams(self.max_tams)
        }
    }

    fn rank_pipeline(
        &self,
        table: &TimeTable,
        total_width: u32,
        budget: SearchBudget,
        k: usize,
    ) -> Result<RankedArchitectures, TamOptError> {
        let config = self.pipeline_config(budget);
        let ranked = co_optimize_top_k(table, total_width, &config, k)?;
        let mut entries = Vec::with_capacity(ranked.entries.len());
        for co in ranked.entries {
            entries.push(Architecture::assemble(
                self.soc.clone(),
                co.tams,
                co.optimized,
                co.heuristic.soc_time(),
                co.stats,
                co.evaluate_time,
                co.final_time,
            )?);
        }
        Ok(RankedArchitectures { entries })
    }

    fn rank_exhaustive(
        &self,
        table: &TimeTable,
        total_width: u32,
        budget: SearchBudget,
        k: usize,
    ) -> Result<(RankedArchitectures, bool), TamOptError> {
        let start = Instant::now();
        let config = ExhaustiveConfig {
            min_tams: self.min_tams,
            max_tams: self.max_tams,
            per_partition: ExactConfig::default(),
            budget,
            parallel: ParallelConfig::with_threads(self.threads),
            ..ExhaustiveConfig::up_to_tams(self.max_tams)
        };
        let ranked = exhaustive::solve_top_k(table, total_width, &config, k)?;
        let elapsed = start.elapsed();
        // Architecture statistics stay in partition units (matching the
        // pipeline strategies): a per-partition solve that hit its limit
        // counts as aborted, not completed.
        let stats = PruneStats {
            enumerated: ranked.partitions_solved,
            completed: ranked.partitions_proven,
            aborted: ranked.partitions_solved - ranked.partitions_proven,
        };
        let mut entries = Vec::with_capacity(ranked.entries.len());
        for RankedPartition { tams, result } in ranked.entries {
            let heuristic_time = result.soc_time();
            entries.push(Architecture::assemble(
                self.soc.clone(),
                tams,
                result,
                heuristic_time,
                stats,
                elapsed,
                Duration::ZERO,
            )?);
        }
        Ok((RankedArchitectures { entries }, ranked.proven_optimal))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tamopt_soc::benchmarks;

    #[test]
    fn defaults_are_sane() {
        let opt = CoOptimizer::new(benchmarks::d695(), 16);
        let arch = opt.run().unwrap();
        assert!(arch.num_tams() >= 1 && arch.num_tams() <= 10);
        assert_eq!(arch.tams.total_width(), 16);
    }

    #[test]
    fn strategies_rank_correctly() {
        let soc = benchmarks::d695();
        let heuristic = CoOptimizer::new(soc.clone(), 24)
            .max_tams(3)
            .strategy(Strategy::Heuristic)
            .run()
            .unwrap();
        let two_step = CoOptimizer::new(soc.clone(), 24)
            .max_tams(3)
            .strategy(Strategy::TwoStep)
            .run()
            .unwrap();
        let exhaustive = CoOptimizer::new(soc, 24)
            .max_tams(3)
            .strategy(Strategy::Exhaustive)
            .run()
            .unwrap();
        assert!(two_step.soc_time() <= heuristic.soc_time());
        assert!(exhaustive.soc_time() <= two_step.soc_time());
    }

    #[test]
    fn exact_tams_pins_the_count() {
        let arch = CoOptimizer::new(benchmarks::d695(), 24)
            .exact_tams(2)
            .run()
            .unwrap();
        assert_eq!(arch.num_tams(), 2);
    }

    #[test]
    fn zero_width_is_an_error() {
        let err = CoOptimizer::new(benchmarks::d695(), 0).run().unwrap_err();
        assert!(matches!(err, TamOptError::Partition(_)));
    }

    #[test]
    fn time_limit_bounds_step_one_end_to_end() {
        // Unbounded, p93791 at W = 64 with up to 10 TAMs enumerates
        // hundreds of thousands of partitions in step 1. A zero time
        // limit must stop after the first generation — well under a
        // second — and still return a valid architecture.
        let start = Instant::now();
        let arch = CoOptimizer::new(benchmarks::p93791(), 64)
            .max_tams(10)
            .time_limit(Duration::ZERO)
            .run()
            .unwrap();
        assert!(
            arch.stats.enumerated <= 64,
            "step 1 must be budget-truncated, enumerated {}",
            arch.stats.enumerated
        );
        assert_eq!(arch.tams.total_width(), 64);
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "the deadline must bound total runtime"
        );
    }

    #[test]
    fn budget_builder_bounds_the_run() {
        let arch = CoOptimizer::new(benchmarks::d695(), 48)
            .max_tams(6)
            .budget(SearchBudget::node_limited(50))
            .run()
            .unwrap();
        // Whole generations only: 32 + 64 dispatched partitions.
        assert_eq!(arch.stats.enumerated, 96);
        assert_eq!(arch.tams.total_width(), 48);
    }

    #[test]
    fn threads_do_not_change_the_architecture() {
        let reference = CoOptimizer::new(benchmarks::d695(), 32)
            .max_tams(4)
            .run()
            .unwrap();
        for threads in [2, 8] {
            let arch = CoOptimizer::new(benchmarks::d695(), 32)
                .max_tams(4)
                .threads(threads)
                .run()
                .unwrap();
            assert_eq!(arch.tams, reference.tams, "threads {threads}");
            assert_eq!(arch.soc_time(), reference.soc_time());
            assert_eq!(arch.stats, reference.stats);
        }
    }

    #[test]
    fn top_1_is_run_bit_identically() {
        for strategy in [Strategy::TwoStep, Strategy::Heuristic, Strategy::Exhaustive] {
            let opt = CoOptimizer::new(benchmarks::d695(), 24)
                .max_tams(3)
                .strategy(strategy);
            let point = opt.run().unwrap();
            let ranked = opt.top_k(1).unwrap();
            assert_eq!(ranked.len(), 1);
            let best = ranked.best();
            assert_eq!(best.tams, point.tams, "{strategy:?}");
            assert_eq!(best.assignment, point.assignment);
            assert_eq!(best.heuristic_time_cycles, point.heuristic_time_cycles);
            assert_eq!(best.stats, point.stats, "{strategy:?}");
        }
    }

    #[test]
    fn top_k_is_sorted_and_beats_nothing_below_rank_1() {
        let opt = CoOptimizer::new(benchmarks::d695(), 32).max_tams(4);
        let ranked = opt.top_k(4).unwrap();
        assert_eq!(ranked.len(), 4);
        assert!(ranked
            .entries
            .windows(2)
            .all(|e| e[0].soc_time() <= e[1].soc_time()));
        let point = opt.run().unwrap();
        assert!(ranked.best().soc_time() <= point.soc_time());
    }

    #[test]
    fn exhaustive_top_k_brackets_the_two_step_ranking() {
        let soc = benchmarks::d695();
        let exact = CoOptimizer::new(soc.clone(), 24)
            .max_tams(3)
            .strategy(Strategy::Exhaustive)
            .top_k(3)
            .unwrap();
        assert_eq!(exact.len(), 3);
        assert!(exact
            .entries
            .windows(2)
            .all(|e| e[0].soc_time() <= e[1].soc_time()));
        let two_step = CoOptimizer::new(soc, 24).max_tams(3).top_k(3).unwrap();
        // The exact rank-1 lower-bounds any heuristic pipeline result.
        assert!(exact.best().soc_time() <= two_step.best().soc_time());
    }

    #[test]
    fn frontier_points_match_independent_runs() {
        let opt = CoOptimizer::new(benchmarks::d695(), 32).max_tams(4);
        let frontier = opt.frontier(16..=32, 8).unwrap();
        assert!(frontier.complete);
        let widths: Vec<u32> = frontier.points.iter().map(|p| p.width).collect();
        assert_eq!(widths, vec![16, 24, 32]);
        for p in &frontier.points {
            let solo = CoOptimizer::new(benchmarks::d695(), p.width)
                .max_tams(4)
                .run()
                .unwrap();
            assert_eq!(p.architecture.tams, solo.tams, "W={}", p.width);
            assert_eq!(p.architecture.assignment, solo.assignment);
            assert_eq!(
                p.lower_bound,
                pareto::bottleneck_lower_bound(&benchmarks::d695(), p.width).unwrap()
            );
        }
        // Wider never slower.
        assert!(frontier
            .points
            .windows(2)
            .all(|p| p[1].architecture.soc_time() <= p[0].architecture.soc_time()));
    }

    #[test]
    #[allow(clippy::reversed_empty_ranges)] // a reversed sweep is exactly the input under test
    fn frontier_rejects_degenerate_sweeps() {
        let opt = CoOptimizer::new(benchmarks::d695(), 32).max_tams(2);
        for (range, step) in [(16..=32, 0), (32..=16, 8), (0..=16, 8)] {
            assert!(matches!(
                opt.frontier(range, step).unwrap_err(),
                TamOptError::InvalidFrontier { .. }
            ));
        }
    }

    #[test]
    fn exhaustive_frontier_is_exact_per_width() {
        let opt = CoOptimizer::new(benchmarks::d695(), 24)
            .max_tams(2)
            .strategy(Strategy::Exhaustive);
        let frontier = opt.frontier(16..=24, 8).unwrap();
        assert!(frontier.complete);
        for p in &frontier.points {
            let solo = CoOptimizer::new(benchmarks::d695(), p.width)
                .max_tams(2)
                .strategy(Strategy::Exhaustive)
                .run()
                .unwrap();
            assert_eq!(p.architecture.tams, solo.tams);
            assert_eq!(p.architecture.soc_time(), solo.soc_time());
        }
    }

    #[test]
    fn ilp_strategy_matches_branch_bound() {
        let soc = benchmarks::d695();
        let bb = CoOptimizer::new(soc.clone(), 16)
            .exact_tams(2)
            .run()
            .unwrap();
        let ilp = CoOptimizer::new(soc, 16)
            .exact_tams(2)
            .strategy(Strategy::TwoStepIlp)
            .run()
            .unwrap();
        assert_eq!(bb.soc_time(), ilp.soc_time());
    }
}
