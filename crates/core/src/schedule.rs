//! Test scheduling on a co-optimized architecture.
//!
//! The paper's introduction separates SOC test integration into
//! wrapper/TAM design and *test scheduling* ("the order in which tests
//! are applied"), and cites power-constrained scheduling as the
//! neighbouring problem (its references [4, 9, 13]). This module adds
//! that layer on top of [`crate::Architecture`]:
//!
//! * [`TestSchedule::serial`] — the schedule implied by the test-bus
//!   model: cores on one TAM test back-to-back, TAMs in parallel; its
//!   makespan *is* the architecture's SOC testing time;
//! * [`schedule_with_power_cap`] — greedy power-aware list scheduling:
//!   tests may be reordered within their TAM and delayed so the total
//!   instantaneous test power never exceeds a cap (idle gaps trade
//!   testing time for power safety);
//! * [`TestSchedule::gantt`] — a text Gantt chart for reports.

use std::fmt::{self, Write as _};

use crate::Architecture;

/// One scheduled core test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledTest {
    /// Core index in SOC order.
    pub core: usize,
    /// TAM the core is assigned to.
    pub tam: usize,
    /// First cycle of the test.
    pub start: u64,
    /// One past the last cycle (`end - start` is the core testing time).
    pub end: u64,
}

/// A complete SOC test schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestSchedule {
    entries: Vec<ScheduledTest>,
    makespan: u64,
    num_tams: usize,
}

/// Error type for power-aware scheduling.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScheduleError {
    /// A power rating was missing (`powers` shorter than the core
    /// count).
    MissingPower {
        /// Core without a rating.
        core: usize,
    },
    /// One core alone exceeds the cap; no schedule can exist.
    CoreExceedsCap {
        /// The offending core.
        core: usize,
        /// Its power rating.
        power: f64,
        /// The cap.
        cap: f64,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::MissingPower { core } => {
                write!(f, "no power rating for core {core}")
            }
            ScheduleError::CoreExceedsCap { core, power, cap } => {
                write!(f, "core {core} draws {power} which exceeds the cap {cap}")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

impl TestSchedule {
    /// The schedule implied by the architecture's test-bus model: each
    /// TAM tests its cores back-to-back in SOC order; all TAMs start at
    /// cycle 0.
    pub fn serial(architecture: &Architecture) -> Self {
        let num_tams = architecture.num_tams();
        let mut next_free = vec![0u64; num_tams];
        let mut entries = Vec::with_capacity(architecture.soc.num_cores());
        for (core, &tam) in architecture.assignment.assignment().iter().enumerate() {
            let len = architecture.wrapper(core).test_time();
            let start = next_free[tam];
            next_free[tam] += len;
            entries.push(ScheduledTest {
                core,
                tam,
                start,
                end: start + len,
            });
        }
        let makespan = next_free.into_iter().max().unwrap_or(0);
        TestSchedule {
            entries,
            makespan,
            num_tams,
        }
    }

    /// The scheduled tests, in scheduling order.
    pub fn entries(&self) -> &[ScheduledTest] {
        &self.entries
    }

    /// Total cycles until the last test completes.
    pub fn makespan(&self) -> u64 {
        self.makespan
    }

    /// Peak instantaneous power, given per-core ratings.
    ///
    /// # Panics
    ///
    /// Panics if `powers` is shorter than the largest core index.
    pub fn peak_power(&self, powers: &[f64]) -> f64 {
        // Sweep the event points; at most 2 per test.
        let mut events: Vec<u64> = self.entries.iter().flat_map(|e| [e.start, e.end]).collect();
        events.sort_unstable();
        events.dedup();
        let mut peak = 0.0f64;
        for &t in &events {
            let level: f64 = self
                .entries
                .iter()
                .filter(|e| e.start <= t && t < e.end)
                .map(|e| powers[e.core])
                .sum();
            peak = peak.max(level);
        }
        peak
    }

    /// Renders the schedule as a standalone SVG document, one swim lane
    /// per TAM, suitable for embedding in reports. `width` is the chart
    /// width in pixels (clamped to at least 100); no external renderer
    /// or dependency is involved — the output is plain SVG 1.1 markup.
    ///
    /// # Example
    ///
    /// ```
    /// use tamopt::schedule::TestSchedule;
    /// use tamopt::{benchmarks, CoOptimizer};
    ///
    /// # fn main() -> Result<(), tamopt::TamOptError> {
    /// let arch = CoOptimizer::new(benchmarks::d695(), 24).max_tams(3).run()?;
    /// let svg = TestSchedule::serial(&arch).to_svg(640);
    /// assert!(svg.starts_with("<svg"));
    /// assert!(svg.contains("</svg>"));
    /// # Ok(())
    /// # }
    /// ```
    pub fn to_svg(&self, width: u32) -> String {
        const LANE_HEIGHT: u32 = 28;
        const LANE_GAP: u32 = 6;
        const LABEL_WIDTH: u32 = 64;
        const AXIS_HEIGHT: u32 = 24;
        let width = width.max(100);
        let chart_width = width - LABEL_WIDTH;
        let height = self.num_tams as u32 * (LANE_HEIGHT + LANE_GAP) + AXIS_HEIGHT;
        let scale = chart_width as f64 / self.makespan.max(1) as f64;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width}\" height=\"{height}\" \
             font-family=\"monospace\" font-size=\"11\">"
        );
        for tam in 0..self.num_tams {
            let y = tam as u32 * (LANE_HEIGHT + LANE_GAP);
            let _ = writeln!(
                out,
                "  <text x=\"2\" y=\"{}\" fill=\"#333\">TAM {}</text>",
                y + LANE_HEIGHT / 2 + 4,
                tam + 1
            );
            let _ = writeln!(
                out,
                "  <rect x=\"{LABEL_WIDTH}\" y=\"{y}\" width=\"{chart_width}\" \
                 height=\"{LANE_HEIGHT}\" fill=\"#f4f4f4\"/>"
            );
        }
        for e in &self.entries {
            let x = LABEL_WIDTH as f64 + e.start as f64 * scale;
            let w = ((e.end - e.start) as f64 * scale).max(1.0);
            let y = e.tam as u32 * (LANE_HEIGHT + LANE_GAP);
            // Spread hues around the wheel so neighbouring cores differ.
            let hue = (e.core * 137) % 360;
            let _ = writeln!(
                out,
                "  <rect x=\"{x:.1}\" y=\"{y}\" width=\"{w:.1}\" height=\"{LANE_HEIGHT}\" \
                 fill=\"hsl({hue},60%,65%)\" stroke=\"#555\" stroke-width=\"0.5\">\
                 <title>core {}: {}..{} ({} cycles)</title></rect>",
                e.core + 1,
                e.start,
                e.end,
                e.end - e.start
            );
            if w >= 18.0 {
                let _ = writeln!(
                    out,
                    "  <text x=\"{:.1}\" y=\"{}\" fill=\"#222\">{}</text>",
                    x + 3.0,
                    y + LANE_HEIGHT / 2 + 4,
                    e.core + 1
                );
            }
        }
        let axis_y = self.num_tams as u32 * (LANE_HEIGHT + LANE_GAP) + 14;
        let _ = writeln!(
            out,
            "  <text x=\"{LABEL_WIDTH}\" y=\"{axis_y}\" fill=\"#333\">0</text>"
        );
        let _ = writeln!(
            out,
            "  <text x=\"{}\" y=\"{axis_y}\" fill=\"#333\" text-anchor=\"end\">{} cycles</text>",
            width - 2,
            self.makespan
        );
        out.push_str("</svg>\n");
        out
    }

    /// Renders a text Gantt chart, `width` characters wide, one row per
    /// TAM. Each core's slot is labelled with its (1-based) index.
    pub fn gantt(&self, width: usize) -> String {
        let width = width.max(10);
        let scale = self.makespan.max(1) as f64 / width as f64;
        let mut out = String::new();
        for tam in 0..self.num_tams {
            let mut row = vec![b'.'; width];
            for e in self.entries.iter().filter(|e| e.tam == tam) {
                let from = (e.start as f64 / scale) as usize;
                let to = (((e.end as f64) / scale) as usize).clamp(from + 1, width);
                let label = ((e.core + 1) % 36) as u32;
                let ch = char::from_digit(label, 36).unwrap_or('#') as u8;
                for slot in row.iter_mut().take(to).skip(from.min(width - 1)) {
                    *slot = ch;
                }
            }
            out.push_str(&format!("TAM {:>2} |", tam + 1));
            out.push_str(std::str::from_utf8(&row).expect("ascii row"));
            out.push_str("|\n");
        }
        out.push_str(&format!("0 .. {} cycles\n", self.makespan));
        out
    }
}

/// Greedy power-aware list scheduling: within each TAM, the next test is
/// the highest-power pending one that fits under `cap` given everything
/// currently running; a TAM whose pending tests all violate the cap
/// idles until the next completion. All TAMs are packed left-to-right.
///
/// The resulting makespan is never below the architecture's SOC testing
/// time; the gap is the price of the power cap.
///
/// # Errors
///
/// * [`ScheduleError::MissingPower`] if `powers.len()` is less than the
///   core count;
/// * [`ScheduleError::CoreExceedsCap`] if any single core's rating
///   exceeds `cap`.
///
/// # Example
///
/// ```
/// use tamopt::schedule::{schedule_with_power_cap, TestSchedule};
/// use tamopt::{benchmarks, CoOptimizer};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let arch = CoOptimizer::new(benchmarks::d695(), 24).max_tams(3).run()?;
/// let powers = vec![1.0; 10];
/// let unconstrained = TestSchedule::serial(&arch);
/// let capped = schedule_with_power_cap(&arch, &powers, 2.0)?;
/// assert!(capped.makespan() >= unconstrained.makespan());
/// assert!(capped.peak_power(&powers) <= 2.0 + 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn schedule_with_power_cap(
    architecture: &Architecture,
    powers: &[f64],
    cap: f64,
) -> Result<TestSchedule, ScheduleError> {
    let n = architecture.soc.num_cores();
    if powers.len() < n {
        return Err(ScheduleError::MissingPower { core: powers.len() });
    }
    for (core, &p) in powers.iter().take(n).enumerate() {
        if p > cap {
            return Err(ScheduleError::CoreExceedsCap {
                core,
                power: p,
                cap,
            });
        }
    }
    let num_tams = architecture.num_tams();
    // Pending tests per TAM, each (core, length).
    let mut pending: Vec<Vec<(usize, u64)>> = vec![Vec::new(); num_tams];
    for (core, &tam) in architecture.assignment.assignment().iter().enumerate() {
        pending[tam].push((core, architecture.wrapper(core).test_time()));
    }
    Ok(greedy_capped(pending, powers, cap))
}

/// The greedy power-capped list scheduler shared by
/// [`schedule_with_power_cap`] and the power-aware co-optimization of
/// [`crate::power`]. `pending[tam]` holds the `(core, length)` tests of
/// that TAM; every core must individually fit under `cap`.
pub(crate) fn greedy_capped(
    mut pending: Vec<Vec<(usize, u64)>>,
    powers: &[f64],
    cap: f64,
) -> TestSchedule {
    let num_tams = pending.len();
    let n: usize = pending.iter().map(Vec::len).sum();
    // Sorted by power descending so the greedy picks tall tests early.
    for queue in &mut pending {
        queue.sort_by(|a, b| powers[b.0].total_cmp(&powers[a.0]).then(a.0.cmp(&b.0)));
    }

    #[derive(Clone, Copy)]
    struct Running {
        core: usize,
        end: u64,
    }
    let mut running: Vec<Option<Running>> = vec![None; num_tams];
    let mut entries: Vec<ScheduledTest> = Vec::with_capacity(n);
    let mut now = 0u64;
    let mut remaining = n;

    while remaining > 0 {
        // Retire finished tests at `now`.
        for slot in &mut running {
            if slot.is_some_and(|r| r.end <= now) {
                *slot = None;
            }
        }
        let mut level: f64 = running.iter().flatten().map(|r| powers[r.core]).sum();
        // Fill idle TAMs greedily under the cap.
        for tam in 0..num_tams {
            if running[tam].is_some() {
                continue;
            }
            let queue = &mut pending[tam];
            if let Some(pos) = queue
                .iter()
                .position(|&(core, _)| level + powers[core] <= cap + 1e-12)
            {
                let (core, len) = queue.remove(pos);
                let end = now + len.max(1);
                running[tam] = Some(Running { core, end });
                entries.push(ScheduledTest {
                    core,
                    tam,
                    start: now,
                    end,
                });
                level += powers[core];
                remaining -= 1;
            }
        }
        // Advance to the next completion.
        if remaining > 0 {
            let next = running.iter().flatten().map(|r| r.end).min();
            match next {
                Some(t) => now = t,
                // Nothing is running yet nothing fits: impossible,
                // since every single core fits under the cap alone.
                None => unreachable!("an idle system always admits some test"),
            }
        }
    }
    let makespan = entries.iter().map(|e| e.end).max().unwrap_or(0);
    TestSchedule {
        entries,
        makespan,
        num_tams,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CoOptimizer;
    use tamopt_soc::benchmarks;

    fn arch() -> Architecture {
        CoOptimizer::new(benchmarks::d695(), 24)
            .max_tams(3)
            .run()
            .unwrap()
    }

    #[test]
    fn serial_makespan_is_soc_time() {
        let a = arch();
        let s = TestSchedule::serial(&a);
        assert_eq!(s.makespan(), a.soc_time());
        assert_eq!(s.entries().len(), a.soc.num_cores());
    }

    #[test]
    fn serial_has_no_gaps_or_overlaps_per_tam() {
        let a = arch();
        let s = TestSchedule::serial(&a);
        for tam in 0..a.num_tams() {
            let mut slots: Vec<_> = s.entries().iter().filter(|e| e.tam == tam).collect();
            slots.sort_by_key(|e| e.start);
            let mut cursor = 0;
            for e in slots {
                assert_eq!(e.start, cursor, "gap or overlap on tam {tam}");
                cursor = e.end;
            }
        }
    }

    #[test]
    fn infinite_cap_equals_serial_makespan() {
        let a = arch();
        let powers = vec![1.0; a.soc.num_cores()];
        let s = schedule_with_power_cap(&a, &powers, f64::MAX).unwrap();
        assert_eq!(s.makespan(), TestSchedule::serial(&a).makespan());
    }

    #[test]
    fn cap_is_respected_and_costs_time() {
        let a = arch();
        let powers = vec![1.0; a.soc.num_cores()];
        // Cap below the TAM count forces serialization across TAMs.
        let capped = schedule_with_power_cap(&a, &powers, 1.5).unwrap();
        assert!(capped.peak_power(&powers) <= 1.5 + 1e-9);
        assert!(capped.makespan() >= TestSchedule::serial(&a).makespan());
        // With only one test allowed at a time, the makespan is at least
        // the total of all test lengths.
        let total: u64 = (0..a.soc.num_cores())
            .map(|c| a.wrapper(c).test_time())
            .sum();
        assert!(capped.makespan() >= total);
    }

    #[test]
    fn errors_on_missing_or_oversized_power() {
        let a = arch();
        assert_eq!(
            schedule_with_power_cap(&a, &[1.0; 3], 10.0).unwrap_err(),
            ScheduleError::MissingPower { core: 3 }
        );
        let mut powers = vec![1.0; a.soc.num_cores()];
        powers[4] = 99.0;
        assert!(matches!(
            schedule_with_power_cap(&a, &powers, 10.0).unwrap_err(),
            ScheduleError::CoreExceedsCap { core: 4, .. }
        ));
    }

    #[test]
    fn every_core_scheduled_exactly_once() {
        let a = arch();
        let powers: Vec<f64> = (0..a.soc.num_cores())
            .map(|i| 1.0 + (i % 3) as f64)
            .collect();
        let s = schedule_with_power_cap(&a, &powers, 4.0).unwrap();
        let mut seen: Vec<usize> = s.entries().iter().map(|e| e.core).collect();
        seen.sort_unstable();
        let expected: Vec<usize> = (0..a.soc.num_cores()).collect();
        assert_eq!(seen, expected);
        // Per-TAM non-overlap still holds with idle gaps allowed.
        for tam in 0..a.num_tams() {
            let mut slots: Vec<_> = s.entries().iter().filter(|e| e.tam == tam).collect();
            slots.sort_by_key(|e| e.start);
            for pair in slots.windows(2) {
                assert!(pair[0].end <= pair[1].start, "overlap on tam {tam}");
            }
        }
    }

    #[test]
    fn gantt_renders_all_tams() {
        let a = arch();
        let s = TestSchedule::serial(&a);
        let g = s.gantt(60);
        for tam in 1..=a.num_tams() {
            assert!(
                g.contains(&format!("TAM {tam:>2} |")),
                "missing TAM {tam} row"
            );
        }
        assert!(g.contains("cycles"));
    }

    #[test]
    fn svg_is_well_formed_and_covers_every_core() {
        let a = arch();
        let svg = TestSchedule::serial(&a).to_svg(640);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<title>core ").count(), a.soc.num_cores());
        for tam in 1..=a.num_tams() {
            assert!(svg.contains(&format!(">TAM {tam}<")), "missing lane {tam}");
        }
        // One background rect per lane plus one slot rect per core.
        assert_eq!(
            svg.matches("<rect").count(),
            a.num_tams() + a.soc.num_cores()
        );
        assert_eq!(svg.matches("</rect>").count(), a.soc.num_cores());
    }

    #[test]
    fn svg_width_is_clamped() {
        let a = arch();
        let svg = TestSchedule::serial(&a).to_svg(1);
        assert!(svg.contains("width=\"100\""));
    }

    #[test]
    fn peak_power_of_serial_sums_concurrent_tams() {
        let a = arch();
        let powers = vec![1.0; a.soc.num_cores()];
        let s = TestSchedule::serial(&a);
        // At cycle 0 every TAM starts a test.
        assert!((s.peak_power(&powers) - a.num_tams() as f64).abs() < 1e-9);
    }
}
