//! End-to-end tests of the `tamopt` command-line binary.

use std::io::Write as _;
use std::process::{Command, Stdio};

fn tamopt() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tamopt"))
}

/// Runs `tamopt serve` with `stdin` piped in and returns the output.
fn serve(stdin: &str, args: &[&str]) -> std::process::Output {
    let mut child = tamopt()
        .arg("serve")
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(stdin.as_bytes())
        .expect("stdin accepts the trace");
    child.wait_with_output().expect("binary exits")
}

/// Drops the lines whose values legitimately vary run to run.
fn stable_lines(raw: &[u8]) -> String {
    String::from_utf8_lossy(raw)
        .lines()
        .filter(|l| !l.contains("wall_clock"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn optimizes_a_named_benchmark() {
    let out = tamopt()
        .args(["--soc", "d695", "--width", "16", "--max-tams", "3"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("SOC d695"));
    assert!(stdout.contains("testing time"));
    assert!(stdout.contains("W = 16"));
}

#[test]
fn analyze_gantt_and_rail_flags_extend_the_report() {
    let out = tamopt()
        .args([
            "--soc",
            "d695",
            "--width",
            "16",
            "--max-tams",
            "2",
            "--analyze",
            "--gantt",
            "--rail",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("wire-cycle utilization"));
    assert!(stdout.contains("hardware:"));
    assert!(stdout.contains("cycles\n"), "gantt axis line");
    assert!(stdout.contains("TestRail architecture"));
    assert!(stdout.contains("bypass tax"));
}

#[test]
fn svg_flag_writes_a_file() {
    let dir = std::env::temp_dir().join("tamopt-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("schedule.svg");
    let out = tamopt()
        .args(["--soc", "d695", "--width", "16", "--max-tams", "2", "--svg"])
        .arg(&path)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let svg = std::fs::read_to_string(&path).expect("file written");
    assert!(svg.starts_with("<svg"));
    assert!(svg.contains("</svg>"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn batch_subcommand_reports_every_request_in_submission_order() {
    let dir = std::env::temp_dir().join("tamopt-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("jobs.manifest");
    std::fs::write(
        &path,
        "d695 16 2 priority=0\n\
         d695 24 3 priority=5\n",
    )
    .expect("file written");
    let out = tamopt()
        .arg("batch")
        .arg(&path)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"schema\": \"tamopt.batch-report/v1\""));
    assert!(stdout.contains("\"complete\": true"));
    // Submission order, not priority order.
    let first = stdout.find("\"width\": 16").expect("first request present");
    let second = stdout
        .find("\"width\": 24")
        .expect("second request present");
    assert!(first < second, "outcomes must be in submission order");
    assert_eq!(stdout.matches("\"status\": \"complete\"").count(), 2);
    std::fs::remove_file(&path).ok();
}

#[test]
fn batch_reports_are_thread_count_invariant_minus_wall_clock() {
    let dir = std::env::temp_dir().join("tamopt-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("determinism.manifest");
    std::fs::write(&path, "d695 16 2\nd695 24 3\n").expect("file written");
    let strip = |raw: &[u8]| -> String {
        String::from_utf8_lossy(raw)
            .lines()
            .filter(|l| !l.contains("wall_clock"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let run = |threads: &str| {
        let out = tamopt()
            .arg("batch")
            .arg(&path)
            .args(["--threads", threads])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        strip(&out.stdout)
    };
    assert_eq!(run("1"), run("4"), "threads must not change the report");
    std::fs::remove_file(&path).ok();
}

#[test]
fn batch_out_flag_writes_the_report_file() {
    let dir = std::env::temp_dir().join("tamopt-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let manifest = dir.join("out.manifest");
    let report = dir.join("report.json");
    std::fs::write(&manifest, "d695 16 2\n").expect("file written");
    let out = tamopt()
        .arg("batch")
        .arg(&manifest)
        .arg("--out")
        .arg(&report)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&report).expect("report written");
    assert!(json.starts_with("{\n"));
    assert!(json.contains("\"soc\": \"d695\""));
    std::fs::remove_file(&manifest).ok();
    std::fs::remove_file(&report).ok();
}

#[test]
fn batch_bad_manifest_fails_cleanly() {
    let out = tamopt()
        .args(["batch", "/nonexistent/jobs.manifest"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));

    let dir = std::env::temp_dir().join("tamopt-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("broken.manifest");
    std::fs::write(&path, "d695 16\n").expect("file written");
    let out = tamopt()
        .arg("batch")
        .arg(&path)
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("line 1"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn serve_streams_outcomes_then_a_final_report() {
    // Equal priorities: ties dispatch in submission order, so the
    // stream order is deterministic even in live mode.
    let out = serve("d695 16 2\nd695 24 3\n", &[]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    // The protocol banner, then two compact outcome lines, then the
    // pretty report.
    assert_eq!(lines[0], "{\"protocol\": \"tamopt-serve\", \"v\": 1}");
    assert!(
        lines[1].starts_with("{\"v\": 1, \"id\": 0,"),
        "line: {}",
        lines[1]
    );
    assert!(
        lines[2].starts_with("{\"v\": 1, \"id\": 1,"),
        "line: {}",
        lines[2]
    );
    assert!(stdout.contains("\"schema\": \"tamopt.batch-report/v1\""));
    assert!(stdout.contains("\"complete\": true"));
    assert_eq!(stdout.matches("\"status\": \"complete\"").count(), 4);
}

#[test]
fn serve_trace_replay_is_thread_count_invariant() {
    let trace = "@0 d695 32 6\n\
                 @0 d695 16 2\n\
                 @0 p31108 24 3\n\
                 @1 d695 24 3 priority=9\n\
                 @1 cancel 1\n";
    let t1 = serve(trace, &["--threads", "1"]);
    let t4 = serve(trace, &["--threads", "4"]);
    assert!(t1.status.success() && t4.status.success());
    let (s1, s4) = (stable_lines(&t1.stdout), stable_lines(&t4.stdout));
    assert_eq!(s1, s4, "replayed serve output must not depend on threads");
    // The high-priority mid-run submission (id 3) streams before the
    // queued id 2…
    let id3 = s1.find("\"id\": 3,").expect("id 3 streamed");
    let id2 = s1.find("\"id\": 2,").expect("id 2 streamed");
    assert!(id3 < id2, "priority 9 preempts the queued backlog");
    // …and id 1 was cancelled at the same barrier, before dispatch.
    assert!(s1.contains(
        "{\"v\": 1, \"id\": 1, \"soc\": \"d695\", \"width\": 16, \
         \"min_tams\": 1, \"max_tams\": 2, \"priority\": 0, \
         \"kind\": \"point\", \"status\": \"cancelled\"}"
    ));
}

#[test]
fn serve_empty_input_reports_cleanly() {
    let out = serve("# nothing but comments\n\n", &[]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"complete\": true"));
    assert!(stdout.contains("\"requests\": ["));
}

#[test]
fn serve_rejects_mixed_and_malformed_input() {
    // Untagged line in a trace: fatal before any work runs.
    let out = serve("@0 d695 16 2\nd695 24 3\n", &[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("line 2"));
    // Malformed line in live mode: reported, skipped, exit code fails,
    // but the valid submission still ran.
    let out = serve("d695 16 2\nbogus!\n", &[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("line 2"));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"status\": \"complete\""));
}

#[test]
fn missing_required_flags_fail_with_usage() {
    let out = tamopt()
        .args(["--width", "16"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--soc is required"));
    assert!(stderr.contains("usage:"));
}

#[test]
fn unknown_benchmark_fails_cleanly() {
    let out = tamopt()
        .args(["--soc", "/nonexistent/chip.soc", "--width", "16"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn parses_a_soc_file_from_disk() {
    let dir = std::env::temp_dir().join("tamopt-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("mini.soc");
    std::fs::write(
        &path,
        "soc mini\n\
         core cpu\n  inputs 8\n  outputs 8\n  scanchains 16 16\n  patterns 50\nend\n\
         core mem\n  inputs 12\n  outputs 10\n  patterns 200\nend\n",
    )
    .expect("file written");
    let out = tamopt()
        .arg("--soc")
        .arg(&path)
        .args(["--width", "8", "--max-tams", "2"])
        .output()
        .expect("binary runs");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stderr}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("SOC mini"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn serve_listen_accepts_tcp_clients_and_reports_on_stdin_close() {
    use std::io::{BufRead as _, BufReader};
    use std::net::TcpStream;

    let mut child = tamopt()
        .args(["serve", "--listen", "127.0.0.1:0", "--threads", "1"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    let mut reader = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("banner line");
    assert_eq!(
        line.trim_end(),
        "{\"protocol\": \"tamopt-serve\", \"v\": 1}"
    );
    line.clear();
    reader.read_line(&mut line).expect("listening line");
    let addr = line
        .trim_end()
        .strip_prefix("{\"listening\": \"")
        .and_then(|tail| tail.strip_suffix("\"}"))
        .unwrap_or_else(|| panic!("unexpected listening line: {line}"))
        .to_owned();

    let stream = TcpStream::connect(&addr).expect("connecting to the server");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(60)))
        .expect("setting a read timeout");
    let mut socket = BufReader::new(stream.try_clone().expect("cloning the stream"));
    let mut net_line = String::new();
    socket.read_line(&mut net_line).expect("greeting");
    assert_eq!(
        net_line.trim_end(),
        "{\"protocol\": \"tamopt-serve\", \"v\": 1, \"client\": 0}"
    );

    let mut writer = stream;
    writeln!(writer, "d695 16 2").expect("submitting");
    net_line.clear();
    socket.read_line(&mut net_line).expect("outcome line");
    assert!(
        net_line.starts_with("{\"v\": 1, \"id\": 0, \"client\": 0, "),
        "outcome: {net_line}"
    );
    assert!(net_line.contains("\"status\": \"complete\""));

    // Generation tags are a trace-mode construct; over the network they
    // are a parse error, answered on the connection.
    writeln!(writer, "@0 d695 16 2").expect("submitting a tagged line");
    net_line.clear();
    socket.read_line(&mut net_line).expect("error line");
    assert!(
        net_line.starts_with("{\"v\": 1, \"client\": 0, \"error\": \"parse\", "),
        "tagged-line reply: {net_line}"
    );

    drop(writer);
    drop(socket);

    // Closing stdin is the shutdown signal: the server seals the queue
    // and prints the final report to its own stdout.
    drop(child.stdin.take());
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut reader, &mut rest).expect("final report");
    let status = child.wait().expect("binary exits");
    assert!(status.success(), "exit: {status:?}\nstdout tail: {rest}");
    assert!(rest.contains("\"schema\": \"tamopt.batch-report/v1\""));
    assert!(rest.contains("\"client\": 0,"), "report tail: {rest}");
    assert!(rest.contains("\"status\": \"complete\""));
}

#[test]
fn serve_rejects_listen_and_socket_together() {
    let out = tamopt()
        .args([
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--socket",
            "/tmp/tamopt-never-bound.sock",
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("mutually exclusive"));
}
