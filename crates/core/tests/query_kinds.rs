//! End-to-end acceptance tests of the typed query kinds: the
//! `CoOptimizer` facade, the service layer and the classic per-width
//! loop of the `design_space` example must all agree.

use tamopt::service::{run_batch, BatchConfig, Request, RequestKind, RequestStatus};
use tamopt::wrapper::pareto;
use tamopt::{benchmarks, CoOptimizer};

#[test]
fn top_k_facade_brackets_run() {
    let ranked = CoOptimizer::new(benchmarks::d695(), 32)
        .max_tams(6)
        .top_k(3)
        .expect("valid query");
    let single = CoOptimizer::new(benchmarks::d695(), 32)
        .max_tams(6)
        .run()
        .expect("valid query");
    assert_eq!(ranked.best().soc_time(), single.soc_time());
    assert_eq!(ranked.best().num_tams(), single.num_tams());
    assert!(ranked
        .entries
        .windows(2)
        .all(|w| w[0].soc_time() <= w[1].soc_time()));
    let report = ranked.report();
    assert!(report.contains("rank"), "{report}");
}

/// The acceptance sweep: `Frontier` over 16..=64 step 8 on p31108
/// reproduces the `design_space` example's time/bound table — once via
/// the facade, once via a **single service call** — against the
/// example's original per-width loop of independent optimizations.
#[test]
fn frontier_reproduces_the_design_space_table_from_one_service_call() {
    let soc = benchmarks::p31108();
    let widths: Vec<u32> = (16..=64).step_by(8).collect();

    let frontier = CoOptimizer::new(soc.clone(), 64)
        .max_tams(6)
        .frontier(16..=64, 8)
        .expect("valid sweep");
    assert!(frontier.complete);
    assert_eq!(frontier.len(), widths.len());

    // The design_space example's loop: one independent optimizer per
    // width, plus the bottleneck bound.
    for (point, &width) in frontier.points.iter().zip(&widths) {
        assert_eq!(point.width, width);
        let arch = CoOptimizer::new(soc.clone(), width)
            .max_tams(6)
            .run()
            .expect("valid width");
        assert_eq!(point.architecture.soc_time(), arch.soc_time(), "W={width}");
        assert_eq!(point.architecture.num_tams(), arch.num_tams(), "W={width}");
        assert_eq!(
            point.lower_bound,
            pareto::bottleneck_lower_bound(&soc, width).expect("valid width"),
            "W={width}"
        );
    }

    // One service call returns the same table.
    let report = run_batch(
        [Request::new(soc.clone(), 64)
            .unwrap()
            .max_tams(6)
            .frontier(16..=64, 8)],
        &BatchConfig::default(),
    );
    let outcome = &report.outcomes[0];
    assert_eq!(outcome.status, RequestStatus::Complete);
    assert_eq!(
        outcome.kind,
        RequestKind::Frontier {
            min_width: 16,
            max_width: 64,
            step: 8
        }
    );
    assert_eq!(outcome.results.len(), frontier.len());
    for (entry, point) in outcome.results.iter().zip(&frontier.points) {
        assert_eq!(entry.width, point.width);
        assert_eq!(
            entry.result.soc_time(),
            point.architecture.soc_time(),
            "W={}",
            entry.width
        );
        assert_eq!(
            entry.lower_bound,
            Some(point.lower_bound),
            "W={}",
            entry.width
        );
    }

    // The rendered table carries the example's columns, every width row
    // and the saturation pin once the time hits the bottleneck bound.
    let table = frontier.report();
    assert!(table.contains("lower bound"), "{table}");
    for width in &widths {
        assert!(
            table.contains(&format!("\n{width:>5} ")),
            "W={width}:\n{table}"
        );
    }
    if frontier.points.iter().any(|p| p.at_bound()) {
        assert!(table.contains("<- at the bottleneck bound"), "{table}");
    }
}
