//! End-to-end crash recovery of the `tamopt serve` daemon.
//!
//! These tests SIGKILL a real `--journal --store`-backed daemon
//! mid-workload and restart it on the same files with `--break-locks`,
//! holding the pair of incarnations to the recovery contract: every
//! accepted (journaled) request is answered exactly once across the
//! crash, winners are byte-identical to an uninterrupted run, and a
//! clean recovery compacts the journal back to its empty header.
//!
//! The deterministic per-scenario chaos twin lives in
//! `examples/chaos.rs --mode crash`; these tests pin the fixed-workload
//! cases into the tier-1 suite.

use std::collections::{BTreeMap, BTreeSet};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Duration;

use tamopt::store::journal::decode;
use tamopt::store::JournalRecord;

/// A fixed mid-size workload: heavy enough that a 60 ms kill lands
/// mid-flight, varied enough that a mixed-up id mapping changes a
/// winner.
const WORKLOAD: &[&str] = &[
    "d695 32 4",
    "p31108 24 3 priority=7",
    "d695 16 2",
    "p21241 32 4 priority=2",
    "d695 24 3",
    "p31108 16 2 priority=9",
];

fn temp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("tamopt-recovery-e2e-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("creating the scratch directory");
    dir
}

fn spawn_serve(dir: &Path, shards: Option<usize>, extra: &[&str]) -> std::process::Child {
    let mut command = Command::new(env!("CARGO_BIN_EXE_tamopt"));
    command
        .current_dir(dir)
        .args(["serve", "--threads", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    if let Some(shards) = shards {
        command.args(["--shards", &shards.to_string()]);
    }
    command.args(extra);
    command.spawn().expect("spawning the serve daemon")
}

/// `{"v": 1, "id": N, ...}` outcome lines only; the report tail is
/// filtered out, and so are torn tails from a kill landing mid-write
/// (a whole outcome line ends with the stats object's `}}`).
fn outcome_lines(stdout: &[u8]) -> Vec<(usize, String)> {
    String::from_utf8_lossy(stdout)
        .lines()
        .filter(|line| line.ends_with("}}"))
        .filter_map(|line| {
            let rest = line.strip_prefix("{\"v\": 1, \"id\": ")?;
            let end = rest.find(',')?;
            let id: usize = rest[..end].parse().ok()?;
            Some((id, line.to_owned()))
        })
        .collect()
}

/// The winner fields of an outcome line: the prune-statistics tail and
/// the shard stamp are stripped — a warm-started redo prunes more, and
/// live shard routing steals by instantaneous load — but the winner
/// itself must be byte-identical.
fn winner(line: &str) -> String {
    let head = line.split(", \"stats\": ").next().unwrap_or(line);
    match (head.find(", \"shard\": "), head.find(", \"soc\": ")) {
        (Some(start), Some(end)) if start < end => format!("{}{}", &head[..start], &head[end..]),
        _ => head.to_owned(),
    }
}

fn feed(child: &mut std::process::Child, script: &str) -> std::process::ChildStdin {
    let mut stdin = child.stdin.take().expect("piped stdin");
    stdin
        .write_all(script.as_bytes())
        .expect("feeding the workload");
    stdin.flush().expect("flushing the workload");
    stdin
}

fn crash_restart_cycle(shards: Option<usize>, name: &str) {
    let dir = temp_dir(name);
    let script = WORKLOAD.join("\n") + "\n";

    // Uninterrupted reference: same shard shape, no persistence.
    let mut reference = spawn_serve(&dir, shards, &[]);
    drop(feed(&mut reference, &script));
    let output = reference
        .wait_with_output()
        .expect("reference daemon exits");
    assert!(
        output.status.success(),
        "reference daemon: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let expected: BTreeMap<usize, String> = outcome_lines(&output.stdout)
        .into_iter()
        .map(|(id, line)| (id, winner(&line)))
        .collect();
    assert_eq!(
        expected.len(),
        WORKLOAD.len(),
        "reference answered everything"
    );

    // Journal-backed victim, SIGKILLed mid-workload. Stdin stays open
    // so the daemon keeps serving right up to the kill.
    let flags = ["--journal", "j.tamjrnl", "--store", "w.tamstore"];
    let mut victim = spawn_serve(&dir, shards, &flags);
    let stdin = feed(&mut victim, &script);
    std::thread::sleep(Duration::from_millis(60));
    victim.kill().expect("killing the victim");
    let output = victim.wait_with_output().expect("victim reaped");
    drop(stdin);
    let before = outcome_lines(&output.stdout);

    // What the journal promised: every accepted submit.
    let journal = dir.join("j.tamjrnl");
    let bytes = std::fs::read(&journal).expect("reading the journal after the kill");
    let accepted: BTreeSet<usize> = decode(&bytes)
        .expect("journal decodes after the kill")
        .records
        .iter()
        .filter_map(|record| match record {
            JournalRecord::Submit { id, .. } => usize::try_from(*id).ok(),
            _ => None,
        })
        .collect();

    // Restart on the same journal + store. The dead daemon's locks are
    // still on disk; `--break-locks` is the documented way through.
    let flags = [
        "--journal",
        "j.tamjrnl",
        "--store",
        "w.tamstore",
        "--break-locks",
    ];
    let mut recovery = spawn_serve(&dir, shards, &flags);
    drop(recovery.stdin.take());
    let output = recovery.wait_with_output().expect("recovery daemon exits");
    assert!(
        output.status.success(),
        "recovery daemon: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let after = outcome_lines(&output.stdout);

    // Oracle 1: no accepted request lost, and recovery answers only
    // accepted ones. (The victim may additionally have answered a
    // request killed between queue accept and journal append — hence
    // subset, not equality.)
    let answered: BTreeSet<usize> = before.iter().chain(&after).map(|&(id, _)| id).collect();
    let lost: Vec<usize> = accepted.difference(&answered).copied().collect();
    assert!(
        lost.is_empty(),
        "accepted request(s) {lost:?} lost across the crash"
    );
    for (id, _) in &after {
        assert!(
            accepted.contains(id),
            "recovery invented request {id} the journal never accepted"
        );
    }

    // Oracle 2: winners byte-identical to the uninterrupted run.
    for (id, line) in before.iter().chain(&after) {
        let want = expected.get(id).expect("every answered id was submitted");
        assert_eq!(
            &winner(line),
            want,
            "request {id}: winner drifted across the crash"
        );
    }

    // Oracle 3: everything sealed → the journal is its empty header.
    let len = std::fs::metadata(&journal).expect("journal exists").len();
    assert_eq!(
        len, 12,
        "journal must compact to its empty header after a clean recovery"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigkill_mid_workload_recovers_every_accepted_request_flat() {
    crash_restart_cycle(None, "flat");
}

#[test]
fn sigkill_mid_workload_recovers_every_accepted_request_sharded() {
    crash_restart_cycle(Some(2), "sharded");
}

#[test]
fn restart_after_a_clean_shutdown_recovers_nothing() {
    let dir = temp_dir("clean");
    let script = "d695 16 2\n";

    let mut first = spawn_serve(&dir, None, &["--journal", "j.tamjrnl"]);
    drop(feed(&mut first, script));
    let output = first.wait_with_output().expect("first daemon exits");
    assert!(output.status.success());
    assert_eq!(outcome_lines(&output.stdout).len(), 1);
    let journal = dir.join("j.tamjrnl");
    assert_eq!(
        std::fs::metadata(&journal).expect("journal exists").len(),
        12,
        "a clean shutdown leaves the empty header"
    );

    // Nothing was left unsealed, so the restart has nothing to redo —
    // and needs no --break-locks: the clean shutdown released them.
    let mut second = spawn_serve(&dir, None, &["--journal", "j.tamjrnl"]);
    drop(second.stdin.take());
    let output = second.wait_with_output().expect("second daemon exits");
    assert!(
        output.status.success(),
        "restart: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(
        outcome_lines(&output.stdout).is_empty(),
        "nothing to recover after a clean shutdown"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        !stderr.contains("recovering"),
        "no recovery banner expected: {stderr}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn overload_flags_account_for_every_submission() {
    // `--max-pending 1` on a six-request burst: some requests are shed
    // at a barrier (a typed `shed` outcome), refused ones are noted on
    // stderr without consuming an id — and between outcomes and notes,
    // all six submissions are accounted for.
    let dir = temp_dir("overload");
    let script = WORKLOAD.join("\n") + "\n";
    let mut child = spawn_serve(&dir, None, &["--max-pending", "1"]);
    drop(feed(&mut child, &script));
    let output = child.wait_with_output().expect("daemon exits");
    assert!(
        output.status.success(),
        "overloaded daemon: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    // No kill here, so no torn tails — but shed outcomes carry an
    // `error` note instead of a `stats` object and end with a single
    // brace, so the crash-tolerant `}}` filter would drop them.
    let stdout = String::from_utf8_lossy(&output.stdout);
    let outcomes: Vec<(usize, &str)> = stdout
        .lines()
        .filter_map(|line| {
            let rest = line.strip_prefix("{\"v\": 1, \"id\": ")?;
            let end = rest.find(',')?;
            Some((rest[..end].parse().ok()?, line))
        })
        .collect();
    let refused = String::from_utf8_lossy(&output.stderr)
        .lines()
        .filter(|line| line.contains("overloaded — request shed"))
        .count();
    assert_eq!(
        outcomes.len() + refused,
        WORKLOAD.len(),
        "outcomes + refusals must cover the whole burst\nstdout: {stdout}\nstderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    // Every shed outcome is self-describing on the wire.
    for (id, line) in &outcomes {
        if line.contains("\"status\": \"shed\"") {
            assert!(
                line.contains("shed by overload protection"),
                "shed outcome {id} lacks its note: {line}"
            );
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
}
