//! Power-aware co-optimization vs scheduling after the fact.
//!
//! The paper separates wrapper/TAM design from test scheduling; its
//! related work ([9], [13]) argues they should be solved together when a
//! power cap binds. This example measures that claim: at each cap, it
//! compares
//!
//! 1. the *decoupled* flow — optimize the architecture for unconstrained
//!    testing time, then reschedule under the cap; against
//! 2. the *co-optimized* flow — `tamopt::power` ranks candidate
//!    architectures by their power-capped makespan directly.
//!
//! Run with: `cargo run --release --example power_codesign`

use tamopt::power::{co_optimize_with_power, PowerConfig};
use tamopt::schedule::schedule_with_power_cap;
use tamopt::{benchmarks, CoOptimizer, Strategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let soc = benchmarks::d695();
    // Scan-heavy cores toggle more logic: rate power by scan cells.
    let powers: Vec<f64> = soc
        .iter()
        .map(|c| 1.0 + c.scan_cells() as f64 / 500.0)
        .collect();
    let hungriest = powers.iter().cloned().fold(f64::MIN, f64::max);

    // The decoupled baseline architecture (unconstrained objective).
    let plain = CoOptimizer::new(soc.clone(), 32)
        .max_tams(4)
        .strategy(Strategy::Heuristic)
        .run()?;
    println!(
        "decoupled baseline: {} TAMs ({}), {} cycles unconstrained\n",
        plain.num_tams(),
        plain.tams,
        plain.soc_time()
    );

    println!(
        "{:>6}  {:>16} {:>12}  {:>16} {:>12}  {:>8}",
        "cap", "decoupled part", "T decoupled", "co-opt part", "T co-opt", "gain"
    );
    let mut cap = hungriest + 0.5;
    while cap < 4.0 * hungriest {
        let decoupled = schedule_with_power_cap(&plain, &powers, cap)?;
        let co = co_optimize_with_power(&soc, 32, &powers, &PowerConfig::new(cap, 4))?;
        println!(
            "{:>6.1}  {:>16} {:>12}  {:>16} {:>12}  {:>7.1} %",
            cap,
            plain.tams.to_string(),
            decoupled.makespan(),
            co.architecture.tams.to_string(),
            co.capped_makespan(),
            (1.0 - co.capped_makespan() as f64 / decoupled.makespan() as f64) * 100.0
        );
        cap += hungriest / 2.0;
    }
    println!("\nPositive gains mark caps where the best unconstrained architecture is");
    println!("no longer the best power-capped one — the case for co-optimization.");
    Ok(())
}
