//! Test scheduling under a power cap: co-optimize the architecture,
//! then reorder and delay core tests so the instantaneous test power
//! never exceeds a budget — the neighbouring problem the paper's
//! related work (its references [4, 9, 13]) addresses.
//!
//! Run with: `cargo run --release --example power_schedule`

use tamopt::schedule::{schedule_with_power_cap, TestSchedule};
use tamopt::{benchmarks, CoOptimizer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let soc = benchmarks::d695();
    let arch = CoOptimizer::new(soc.clone(), 32).max_tams(4).run()?;
    println!("{}", arch.report());

    // Scan-heavy cores toggle more logic: rate power by scan cells.
    let powers: Vec<f64> = soc
        .iter()
        .map(|c| 1.0 + (c.scan_cells() as f64 / 500.0))
        .collect();
    let unconstrained = TestSchedule::serial(&arch);
    println!(
        "unconstrained schedule: {} cycles, peak power {:.2}",
        unconstrained.makespan(),
        unconstrained.peak_power(&powers)
    );
    println!("{}", unconstrained.gantt(64));

    for cap in [8.0f64, 6.0, 4.5] {
        let capped = schedule_with_power_cap(&arch, &powers, cap)?;
        println!(
            "cap {:>4.1}: {} cycles (+{:.1} % time), peak {:.2}",
            cap,
            capped.makespan(),
            (capped.makespan() as f64 / unconstrained.makespan() as f64 - 1.0) * 100.0,
            capped.peak_power(&powers)
        );
        println!("{}", capped.gantt(64));
    }
    Ok(())
}
