//! Seeded, deterministic fuzz harness over every untrusted input
//! surface of the workspace:
//!
//! * the batch-manifest grammar ([`tamopt::cli::parse_manifest`]),
//! * the serve line protocol ([`tamopt::cli::parse_serve_line`]),
//! * the ITC'02 SOC parser ([`tamopt::soc::itc02`]),
//! * the warm-start store file format ([`tamopt::store::Store`]),
//! * the framed network protocol ([`tamopt::service::LineFramer`] +
//!   the serve grammar): split, merged, oversized and interleaved
//!   lines must frame chunking-invariantly and answer with error
//!   lines — never a panic or a wedged connection.
//!
//! This is **not** cargo-fuzz: the build container has no crates.io
//! access, so the harness is a plain example over the vendored `rand`
//! shim — grammar-aware generation plus byte-level mutation (bit flips,
//! truncation, token splices), fully reproducible from `--seed`.
//!
//! Each iteration first builds a *valid* input and checks the surface's
//! semantic oracle (valid inputs parse; writers round-trip; store bytes
//! decode back to equal bytes), then mutates the input and checks the
//! robustness oracle: the parser may reject, but must never panic.
//!
//! ```text
//! cargo run --release --example fuzz -- [--iters N] [--seed S] \
//!     [--surface all|manifest|serve|itc02|store|net]
//! ```
//!
//! On any violation the offending input is written to `fuzz-failures/`
//! (reproduce with the printed seed) and the process exits non-zero.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;

use rand::{rngs::StdRng, Rng, SeedableRng};
use tamopt::cli::{parse_manifest, parse_serve_line};
use tamopt::service::{error_line, Frame, LineFramer, MAX_LINE_LEN};
use tamopt::soc::itc02::{parse_itc02, write_itc02};
use tamopt::soc::{
    benchmarks,
    generator::{CoreClass, SocSpec},
    Soc,
};
use tamopt::store::{CostColumns, Store, StoreConfig};
use tamopt::TimeTable;

const SURFACES: [&str; 5] = ["manifest", "serve", "itc02", "store", "net"];
const BENCHES: [&str; 4] = ["d695", "p21241", "p31108", "p93791"];

/// The in-memory SOC resolver: benchmark names only, no filesystem, so
/// the harness fuzzes the grammar rather than the OS.
fn resolve(name: &str) -> Result<Soc, String> {
    match name {
        "d695" => Ok(benchmarks::d695()),
        "p21241" => Ok(benchmarks::p21241()),
        "p31108" => Ok(benchmarks::p31108()),
        "p93791" => Ok(benchmarks::p93791()),
        other => Err(format!("unknown SOC `{other}`")),
    }
}

fn usage() -> String {
    "usage: fuzz [--iters N] [--seed S] [--surface all|manifest|serve|itc02|store|net]".to_owned()
}

struct Args {
    iters: u64,
    seed: u64,
    surface: String,
}

fn parse_args() -> Result<Args, String> {
    let mut iters = 200;
    let mut seed = 0xDA7E_2002;
    let mut surface = "all".to_owned();
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |flag: &str| argv.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--iters" => iters = value("--iters")?.parse().map_err(|_| usage())?,
            "--seed" => seed = value("--seed")?.parse().map_err(|_| usage())?,
            "--surface" => surface = value("--surface")?,
            _ => return Err(usage()),
        }
    }
    if surface != "all" && !SURFACES.contains(&surface.as_str()) {
        return Err(usage());
    }
    Ok(Args {
        iters,
        seed,
        surface,
    })
}

/// A recorded oracle violation: the input that triggered it, preserved
/// for replay.
struct Failure {
    surface: &'static str,
    case: u64,
    reason: String,
    input: Vec<u8>,
}

struct Session {
    rng: StdRng,
    seed: u64,
    failures: Vec<Failure>,
}

impl Session {
    fn fail(&mut self, surface: &'static str, case: u64, reason: String, input: &[u8]) {
        eprintln!("fuzz: {surface} case {case}: {reason}");
        self.failures.push(Failure {
            surface,
            case,
            reason,
            input: input.to_vec(),
        });
    }

    /// Runs `parser` on `input`; a panic is an oracle violation, an
    /// `Err` is the parser doing its job.
    fn must_not_panic<F: FnMut()>(
        &mut self,
        surface: &'static str,
        case: u64,
        input: &[u8],
        parser: F,
    ) {
        if catch_unwind(AssertUnwindSafe(parser)).is_err() {
            self.fail(surface, case, "parser panicked".to_owned(), input);
        }
    }
}

/// Applies one random byte-level mutation: bit flips, truncation, a
/// spliced copy of an internal range, or raw byte insertion.
fn mutate(rng: &mut StdRng, bytes: &mut Vec<u8>) {
    if bytes.is_empty() {
        bytes.extend((0..rng.gen_range(1..=16u32)).map(|_| rng.gen::<u8>()));
        return;
    }
    match rng.gen_range(0u32..4) {
        0 => {
            for _ in 0..rng.gen_range(1..=8u32) {
                let at = rng.gen_range(0..bytes.len());
                bytes[at] ^= 1 << rng.gen_range(0..8u32);
            }
        }
        1 => bytes.truncate(rng.gen_range(0..bytes.len())),
        2 => {
            let lo = rng.gen_range(0..bytes.len());
            let hi = rng.gen_range(lo..bytes.len());
            let splice: Vec<u8> = bytes[lo..=hi].to_vec();
            let at = rng.gen_range(0..=bytes.len());
            bytes.splice(at..at, splice);
        }
        _ => {
            let at = rng.gen_range(0..=bytes.len());
            let junk: Vec<u8> = (0..rng.gen_range(1..=8u32))
                .map(|_| rng.gen::<u8>())
                .collect();
            bytes.splice(at..at, junk);
        }
    }
}

/// One valid request line: `<soc> <width> <max-tams> [key=value]…`.
fn gen_request_line(rng: &mut StdRng) -> String {
    let soc = BENCHES[rng.gen_range(0..BENCHES.len())];
    let width = rng.gen_range(8..=64u32);
    let max_tams = rng.gen_range(1..=8u32);
    let mut line = format!("{soc} {width} {max_tams}");
    if rng.gen::<bool>() {
        line.push_str(&format!(" min-tams={}", rng.gen_range(1..=max_tams)));
    }
    if rng.gen::<bool>() {
        line.push_str(&format!(" priority={}", rng.gen_range(0..=9u32)));
    }
    if rng.gen::<bool>() {
        line.push_str(&format!(" node-budget={}", rng.gen_range(1..=100_000u64)));
    }
    match rng.gen_range(0u32..4) {
        0 => line.push_str(" kind=point"),
        1 => line.push_str(&format!(" kind=topk:{}", rng.gen_range(1..=5u32))),
        2 => {
            let lo = rng.gen_range(1..width);
            let step = rng.gen_range(1..=8u32);
            line.push_str(&format!(" kind=frontier:{lo}..{width}:{step}"));
        }
        _ => {}
    }
    line
}

/// A valid manifest: request lines mixed with comments and blanks.
fn gen_manifest(rng: &mut StdRng) -> String {
    let mut text = String::new();
    for _ in 0..rng.gen_range(1..=5u32) {
        match rng.gen_range(0u32..5) {
            0 => text.push_str("# a comment line\n"),
            1 => text.push('\n'),
            _ => {
                text.push_str(&gen_request_line(rng));
                if rng.gen::<bool>() {
                    text.push_str(" # trailing comment");
                }
                text.push('\n');
            }
        }
    }
    text.push_str(&gen_request_line(rng));
    text.push('\n');
    text
}

/// A valid serve-protocol line: an optionally `@gen[/shard]`-tagged
/// submit, cancel or stats directive.
fn gen_serve_line(rng: &mut StdRng) -> String {
    let mut line = String::new();
    if rng.gen::<bool>() {
        line.push_str(&format!("@{}", rng.gen_range(0..=12u32)));
        if rng.gen::<bool>() {
            line.push_str(&format!("/{}", rng.gen_range(0..4usize)));
        }
        line.push(' ');
    }
    match rng.gen_range(0u32..4) {
        0 => line.push_str(&format!("cancel {}", rng.gen_range(0..32usize))),
        1 => line.push_str("stats"),
        _ => line.push_str(&gen_request_line(rng)),
    }
    line
}

fn fuzz_manifest(s: &mut Session, iters: u64) {
    for case in 0..iters {
        let valid = gen_manifest(&mut s.rng);
        if let Err(e) = parse_manifest(&valid, &resolve) {
            s.fail(
                "manifest",
                case,
                format!("valid manifest rejected: {e}"),
                valid.as_bytes(),
            );
        }
        let mut bytes = valid.into_bytes();
        mutate(&mut s.rng, &mut bytes);
        let text = String::from_utf8_lossy(&bytes).into_owned();
        s.must_not_panic("manifest", case, &bytes, || {
            let _ = parse_manifest(&text, &resolve);
        });
    }
}

fn fuzz_serve(s: &mut Session, iters: u64) {
    for case in 0..iters {
        let valid = gen_serve_line(&mut s.rng);
        if let Err(e) = parse_serve_line(&valid, &resolve) {
            s.fail(
                "serve",
                case,
                format!("valid serve line rejected: {e}"),
                valid.as_bytes(),
            );
        }
        let mut bytes = valid.into_bytes();
        mutate(&mut s.rng, &mut bytes);
        let text = String::from_utf8_lossy(&bytes).into_owned();
        s.must_not_panic("serve", case, &bytes, || {
            let _ = parse_serve_line(&text, &resolve);
        });
    }
}

fn fuzz_itc02(s: &mut Session, iters: u64) {
    for case in 0..iters {
        let spec_seed = s.rng.gen::<u64>();
        let logic = s.rng.gen_range(1..=6usize);
        let soc = SocSpec::new(format!("fuzz{case}"), spec_seed)
            .class(CoreClass::logic(
                "logic",
                logic,
                (16, 4096),
                (4, 96),
                (1, 12),
                (8, 200),
            ))
            .class(CoreClass::memory(
                "mem",
                s.rng.gen_range(1..=3usize),
                (128, 8192),
                (8, 64),
            ))
            .generate()
            .expect("generator specs are valid by construction");
        let written = write_itc02(&soc);
        match parse_itc02(&written) {
            Ok(reparsed) => {
                // The writer must be a fixed point of the parser.
                if write_itc02(&reparsed) != written {
                    s.fail(
                        "itc02",
                        case,
                        "write → parse → write is not a fixed point".to_owned(),
                        written.as_bytes(),
                    );
                }
            }
            Err(e) => s.fail(
                "itc02",
                case,
                format!("written SOC rejected: {e}"),
                written.as_bytes(),
            ),
        }
        let mut bytes = written.into_bytes();
        mutate(&mut s.rng, &mut bytes);
        let text = String::from_utf8_lossy(&bytes).into_owned();
        s.must_not_panic("itc02", case, &bytes, || {
            let _ = parse_itc02(&text);
        });
    }
}

fn fuzz_store(s: &mut Session, iters: u64, columns: &CostColumns) {
    for case in 0..iters {
        let mut store = Store::in_memory(StoreConfig::default());
        for _ in 0..s.rng.gen_range(0..=6u32) {
            let fingerprint = s.rng.gen::<u64>();
            store.record_incumbent(
                fingerprint,
                s.rng.gen_range(1..=64u32),
                s.rng.gen_range(1..=16u32),
                s.rng.gen::<u64>() >> 16,
            );
            if s.rng.gen::<bool>() {
                store.record_columns(fingerprint, columns.clone());
            }
        }
        let bytes = store.to_bytes();
        // Semantic oracle: encode → decode → encode is byte-stable and
        // decoding our own bytes never warns.
        match Store::from_bytes(&bytes, StoreConfig::default()) {
            Ok(decoded) => {
                if !decoded.warnings().is_empty() {
                    s.fail(
                        "store",
                        case,
                        format!("own bytes warned: {:?}", decoded.warnings()),
                        &bytes,
                    );
                } else if decoded.to_bytes() != bytes {
                    s.fail(
                        "store",
                        case,
                        "encode → decode → encode is not byte-stable".to_owned(),
                        &bytes,
                    );
                }
            }
            Err(e) => s.fail("store", case, format!("own bytes rejected: {e}"), &bytes),
        }
        let mut mutated = bytes;
        mutate(&mut s.rng, &mut mutated);
        s.must_not_panic("store", case, &mutated, || {
            // A mutated file may decode with warnings or fail (a bit
            // flip in the version field reads as a future version) —
            // either way, no panic.
            let _ = Store::from_bytes(&mutated, StoreConfig::default());
        });
    }
}

/// A hostile framed byte stream: valid serve lines, junk, carriage
/// returns, an occasional oversized line, sometimes an unterminated
/// tail — the traffic shapes a network peer can produce.
fn gen_net_stream(rng: &mut StdRng) -> Vec<u8> {
    let mut bytes = Vec::new();
    for _ in 0..rng.gen_range(1..=6u32) {
        match rng.gen_range(0u32..8) {
            0 => {
                let over = MAX_LINE_LEN + rng.gen_range(1..=65usize);
                bytes.extend(std::iter::repeat_n(b'z', over));
            }
            1 => {
                for _ in 0..rng.gen_range(1..=24u32) {
                    let byte = rng.gen::<u8>();
                    if byte != b'\n' {
                        bytes.push(byte);
                    }
                }
            }
            2 => bytes.extend_from_slice(b"cancel 99999999999999999999999999"),
            _ => {
                bytes.extend(gen_serve_line(rng).into_bytes());
                if rng.gen::<bool>() {
                    bytes.push(b'\r');
                }
            }
        }
        bytes.push(b'\n');
    }
    if rng.gen::<bool>() {
        bytes.pop();
    }
    bytes
}

/// Frames `stream` pushed in random chunks (down to single bytes).
fn frames_chunked(rng: &mut StdRng, stream: &[u8]) -> Vec<Frame> {
    let mut framer = LineFramer::new();
    let mut frames = Vec::new();
    let mut rest = stream;
    while !rest.is_empty() {
        let take = rng.gen_range(1..=rest.len().min(97));
        frames.extend(framer.push(&rest[..take]));
        rest = &rest[take..];
    }
    frames.extend(framer.finish());
    frames
}

fn fuzz_net(s: &mut Session, iters: u64) {
    for case in 0..iters {
        let stream = gen_net_stream(&mut s.rng);
        // Semantic oracle: framing is chunking-invariant — the same
        // bytes split or merged arbitrarily yield the same frames.
        let mut whole = LineFramer::new();
        let mut reference = whole.push(&stream);
        reference.extend(whole.finish());
        let chunked = frames_chunked(&mut s.rng, &stream);
        if chunked != reference {
            s.fail(
                "net",
                case,
                "framing depends on chunk boundaries".to_owned(),
                &stream,
            );
        }
        // An oversized line never wedges the connection: a valid line
        // appended after the whole stream still frames intact.
        let mut resync = LineFramer::new();
        let mut tail = resync.push(&stream);
        tail.extend(resync.push(b"\nstats\n"));
        match tail.last() {
            Some(Frame::Line(line)) if line == "stats" => {}
            other => s.fail(
                "net",
                case,
                format!("no resync after the stream: {other:?}"),
                &stream,
            ),
        }
        // Robustness: every framed line goes through the real serve
        // grammar; rejections must render as well-formed single-line
        // versioned error lines — never a panic.
        s.must_not_panic("net", case, &stream, || {
            for frame in &reference {
                let detail = match frame {
                    Frame::Oversized => "line exceeds the frame limit".to_owned(),
                    Frame::Line(text) => match parse_serve_line(text, &resolve) {
                        Err(message) => message,
                        Ok(_) => continue,
                    },
                };
                let line = error_line(0, "parse", &detail);
                assert!(
                    line.ends_with('\n') && !line[..line.len() - 1].contains('\n'),
                    "error line spans lines: {line:?}"
                );
                assert!(
                    line.starts_with("{\"v\": 1, \"client\": 0, \"error\": "),
                    "error line lost its envelope: {line:?}"
                );
            }
        });
        // And once more on mutated bytes: frame + parse arbitrary
        // garbage without panicking.
        let mut mutated = stream;
        mutate(&mut s.rng, &mut mutated);
        s.must_not_panic("net", case, &mutated, || {
            let mut framer = LineFramer::new();
            let mut frames = framer.push(&mutated);
            frames.extend(framer.finish());
            for frame in frames {
                if let Frame::Line(text) = frame {
                    let _ = parse_serve_line(&text, &resolve);
                }
            }
        });
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "fuzz: surface={} iters={} seed={} (reproduce with --seed {})",
        args.surface, args.iters, args.seed, args.seed
    );

    // Silence the per-panic backtrace spew; failures are recorded with
    // their inputs instead.
    std::panic::set_hook(Box::new(|_| {}));

    let mut session = Session {
        rng: StdRng::seed_from_u64(args.seed),
        seed: args.seed,
        failures: Vec::new(),
    };
    // One shared columns payload: real wrapper data, computed once.
    let table = TimeTable::new(&benchmarks::d695(), 16).expect("d695 table");
    let columns = CostColumns::from_table(&table);

    let run = |surface: &str| args.surface == "all" || args.surface == surface;
    if run("manifest") {
        fuzz_manifest(&mut session, args.iters);
    }
    if run("serve") {
        fuzz_serve(&mut session, args.iters);
    }
    if run("itc02") {
        fuzz_itc02(&mut session, args.iters);
    }
    if run("store") {
        fuzz_store(&mut session, args.iters, &columns);
    }
    if run("net") {
        fuzz_net(&mut session, args.iters);
    }
    let _ = std::panic::take_hook();

    if session.failures.is_empty() {
        println!("fuzz: all surfaces clean");
        return ExitCode::SUCCESS;
    }
    let dir = std::path::Path::new("fuzz-failures");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("fuzz: cannot create {}: {e}", dir.display());
    }
    for failure in &session.failures {
        let name = format!(
            "{}-seed{}-case{}.bin",
            failure.surface, session.seed, failure.case
        );
        let path = dir.join(&name);
        match std::fs::write(&path, &failure.input) {
            Ok(()) => eprintln!("fuzz: {}: {} -> {}", failure.surface, failure.reason, name),
            Err(e) => eprintln!("fuzz: cannot write {}: {e}", path.display()),
        }
    }
    eprintln!(
        "fuzz: {} failure(s); inputs under {} (reproduce with --seed {})",
        session.failures.len(),
        dir.display(),
        session.seed
    );
    ExitCode::FAILURE
}
