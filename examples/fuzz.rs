//! Seeded, deterministic fuzz harness over every untrusted input
//! surface of the workspace:
//!
//! * the batch-manifest grammar ([`tamopt::cli::parse_manifest`]),
//! * the serve line protocol ([`tamopt::cli::parse_serve_line`]),
//! * the ITC'02 SOC parser ([`tamopt::soc::itc02`]),
//! * the warm-start store file format ([`tamopt::store::Store`]),
//! * the framed network protocol ([`tamopt::service::LineFramer`] +
//!   the serve grammar): split, merged, oversized and interleaved
//!   lines must frame chunking-invariantly and answer with error
//!   lines — never a panic or a wedged connection,
//! * whole tagged submit/cancel **traces** ([`tamopt::service::Trace`]
//!   / [`ShardTrace`]): structure-aware generation whose oracle is the
//!   workspace invariant itself — replays are byte-identical across
//!   threads and winner-identical across shard shapes, a store-backed
//!   restart mid-trace redoes the tail with identical winners and
//!   never more work, and the write-ahead journal round-trips its
//!   records (and tolerates arbitrary corruption) across a reopen.
//!
//! This is **not** cargo-fuzz: the build container has no crates.io
//! access, so the harness is a plain example over the vendored `rand`
//! shim — grammar-aware generation plus byte-level mutation (bit flips,
//! truncation, token splices), fully reproducible from `--seed`.
//!
//! Each iteration first builds a *valid* input and checks the surface's
//! semantic oracle (valid inputs parse; writers round-trip; store bytes
//! decode back to equal bytes), then mutates the input and checks the
//! robustness oracle: the parser may reject, but must never panic.
//!
//! ```text
//! cargo run --release --example fuzz -- [--iters N] [--seed S] \
//!     [--surface all|manifest|serve|itc02|store|net|trace]
//! ```
//!
//! On any violation the offending input is written to `fuzz-failures/`
//! (reproduce with the printed seed) and the process exits non-zero.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;

use rand::{rngs::StdRng, Rng, SeedableRng};
use tamopt::cli::{parse_manifest, parse_serve_line};
use tamopt::service::{
    error_line, Frame, LineFramer, LiveConfig, LiveQueue, Request, RequestOutcome, ShardTrace,
    ShardedQueue, StoreBinding, Trace, MAX_LINE_LEN,
};
use tamopt::soc::itc02::{parse_itc02, write_itc02};
use tamopt::soc::{
    benchmarks,
    generator::{CoreClass, SocSpec},
    Soc,
};
use tamopt::store::journal::{decode as decode_journal, unsealed};
use tamopt::store::{CostColumns, Journal, JournalRecord, Store, StoreConfig, SyncPolicy};
use tamopt::TimeTable;

const SURFACES: [&str; 6] = ["manifest", "serve", "itc02", "store", "net", "trace"];
const BENCHES: [&str; 4] = ["d695", "p21241", "p31108", "p93791"];

/// The in-memory SOC resolver: benchmark names only, no filesystem, so
/// the harness fuzzes the grammar rather than the OS.
fn resolve(name: &str) -> Result<Soc, String> {
    match name {
        "d695" => Ok(benchmarks::d695()),
        "p21241" => Ok(benchmarks::p21241()),
        "p31108" => Ok(benchmarks::p31108()),
        "p93791" => Ok(benchmarks::p93791()),
        other => Err(format!("unknown SOC `{other}`")),
    }
}

fn usage() -> String {
    "usage: fuzz [--iters N] [--seed S] \
     [--surface all|manifest|serve|itc02|store|net|trace]"
        .to_owned()
}

struct Args {
    iters: u64,
    seed: u64,
    surface: String,
}

fn parse_args() -> Result<Args, String> {
    let mut iters = 200;
    let mut seed = 0xDA7E_2002;
    let mut surface = "all".to_owned();
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |flag: &str| argv.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--iters" => iters = value("--iters")?.parse().map_err(|_| usage())?,
            "--seed" => seed = value("--seed")?.parse().map_err(|_| usage())?,
            "--surface" => surface = value("--surface")?,
            _ => return Err(usage()),
        }
    }
    if surface != "all" && !SURFACES.contains(&surface.as_str()) {
        return Err(usage());
    }
    Ok(Args {
        iters,
        seed,
        surface,
    })
}

/// A recorded oracle violation: the input that triggered it, preserved
/// for replay.
struct Failure {
    surface: &'static str,
    case: u64,
    reason: String,
    input: Vec<u8>,
}

struct Session {
    rng: StdRng,
    seed: u64,
    failures: Vec<Failure>,
}

impl Session {
    fn fail(&mut self, surface: &'static str, case: u64, reason: String, input: &[u8]) {
        eprintln!("fuzz: {surface} case {case}: {reason}");
        self.failures.push(Failure {
            surface,
            case,
            reason,
            input: input.to_vec(),
        });
    }

    /// Runs `parser` on `input`; a panic is an oracle violation, an
    /// `Err` is the parser doing its job.
    fn must_not_panic<F: FnMut()>(
        &mut self,
        surface: &'static str,
        case: u64,
        input: &[u8],
        parser: F,
    ) {
        if catch_unwind(AssertUnwindSafe(parser)).is_err() {
            self.fail(surface, case, "parser panicked".to_owned(), input);
        }
    }
}

/// Applies one random byte-level mutation: bit flips, truncation, a
/// spliced copy of an internal range, or raw byte insertion.
fn mutate(rng: &mut StdRng, bytes: &mut Vec<u8>) {
    if bytes.is_empty() {
        bytes.extend((0..rng.gen_range(1..=16u32)).map(|_| rng.gen::<u8>()));
        return;
    }
    match rng.gen_range(0u32..4) {
        0 => {
            for _ in 0..rng.gen_range(1..=8u32) {
                let at = rng.gen_range(0..bytes.len());
                bytes[at] ^= 1 << rng.gen_range(0..8u32);
            }
        }
        1 => bytes.truncate(rng.gen_range(0..bytes.len())),
        2 => {
            let lo = rng.gen_range(0..bytes.len());
            let hi = rng.gen_range(lo..bytes.len());
            let splice: Vec<u8> = bytes[lo..=hi].to_vec();
            let at = rng.gen_range(0..=bytes.len());
            bytes.splice(at..at, splice);
        }
        _ => {
            let at = rng.gen_range(0..=bytes.len());
            let junk: Vec<u8> = (0..rng.gen_range(1..=8u32))
                .map(|_| rng.gen::<u8>())
                .collect();
            bytes.splice(at..at, junk);
        }
    }
}

/// One valid request line: `<soc> <width> <max-tams> [key=value]…`.
fn gen_request_line(rng: &mut StdRng) -> String {
    let soc = BENCHES[rng.gen_range(0..BENCHES.len())];
    let width = rng.gen_range(8..=64u32);
    let max_tams = rng.gen_range(1..=8u32);
    let mut line = format!("{soc} {width} {max_tams}");
    if rng.gen::<bool>() {
        line.push_str(&format!(" min-tams={}", rng.gen_range(1..=max_tams)));
    }
    if rng.gen::<bool>() {
        line.push_str(&format!(" priority={}", rng.gen_range(0..=9u32)));
    }
    if rng.gen::<bool>() {
        line.push_str(&format!(" node-budget={}", rng.gen_range(1..=100_000u64)));
    }
    match rng.gen_range(0u32..4) {
        0 => line.push_str(" kind=point"),
        1 => line.push_str(&format!(" kind=topk:{}", rng.gen_range(1..=5u32))),
        2 => {
            let lo = rng.gen_range(1..width);
            let step = rng.gen_range(1..=8u32);
            line.push_str(&format!(" kind=frontier:{lo}..{width}:{step}"));
        }
        _ => {}
    }
    line
}

/// A valid manifest: request lines mixed with comments and blanks.
fn gen_manifest(rng: &mut StdRng) -> String {
    let mut text = String::new();
    for _ in 0..rng.gen_range(1..=5u32) {
        match rng.gen_range(0u32..5) {
            0 => text.push_str("# a comment line\n"),
            1 => text.push('\n'),
            _ => {
                text.push_str(&gen_request_line(rng));
                if rng.gen::<bool>() {
                    text.push_str(" # trailing comment");
                }
                text.push('\n');
            }
        }
    }
    text.push_str(&gen_request_line(rng));
    text.push('\n');
    text
}

/// A valid serve-protocol line: an optionally `@gen[/shard]`-tagged
/// submit, cancel or stats directive.
fn gen_serve_line(rng: &mut StdRng) -> String {
    let mut line = String::new();
    if rng.gen::<bool>() {
        line.push_str(&format!("@{}", rng.gen_range(0..=12u32)));
        if rng.gen::<bool>() {
            line.push_str(&format!("/{}", rng.gen_range(0..4usize)));
        }
        line.push(' ');
    }
    match rng.gen_range(0u32..4) {
        0 => line.push_str(&format!("cancel {}", rng.gen_range(0..32usize))),
        1 => line.push_str("stats"),
        _ => line.push_str(&gen_request_line(rng)),
    }
    line
}

fn fuzz_manifest(s: &mut Session, iters: u64) {
    for case in 0..iters {
        let valid = gen_manifest(&mut s.rng);
        if let Err(e) = parse_manifest(&valid, &resolve) {
            s.fail(
                "manifest",
                case,
                format!("valid manifest rejected: {e}"),
                valid.as_bytes(),
            );
        }
        let mut bytes = valid.into_bytes();
        mutate(&mut s.rng, &mut bytes);
        let text = String::from_utf8_lossy(&bytes).into_owned();
        s.must_not_panic("manifest", case, &bytes, || {
            let _ = parse_manifest(&text, &resolve);
        });
    }
}

fn fuzz_serve(s: &mut Session, iters: u64) {
    for case in 0..iters {
        let valid = gen_serve_line(&mut s.rng);
        if let Err(e) = parse_serve_line(&valid, &resolve) {
            s.fail(
                "serve",
                case,
                format!("valid serve line rejected: {e}"),
                valid.as_bytes(),
            );
        }
        let mut bytes = valid.into_bytes();
        mutate(&mut s.rng, &mut bytes);
        let text = String::from_utf8_lossy(&bytes).into_owned();
        s.must_not_panic("serve", case, &bytes, || {
            let _ = parse_serve_line(&text, &resolve);
        });
    }
}

fn fuzz_itc02(s: &mut Session, iters: u64) {
    for case in 0..iters {
        let spec_seed = s.rng.gen::<u64>();
        let logic = s.rng.gen_range(1..=6usize);
        let soc = SocSpec::new(format!("fuzz{case}"), spec_seed)
            .class(CoreClass::logic(
                "logic",
                logic,
                (16, 4096),
                (4, 96),
                (1, 12),
                (8, 200),
            ))
            .class(CoreClass::memory(
                "mem",
                s.rng.gen_range(1..=3usize),
                (128, 8192),
                (8, 64),
            ))
            .generate()
            .expect("generator specs are valid by construction");
        let written = write_itc02(&soc);
        match parse_itc02(&written) {
            Ok(reparsed) => {
                // The writer must be a fixed point of the parser.
                if write_itc02(&reparsed) != written {
                    s.fail(
                        "itc02",
                        case,
                        "write → parse → write is not a fixed point".to_owned(),
                        written.as_bytes(),
                    );
                }
            }
            Err(e) => s.fail(
                "itc02",
                case,
                format!("written SOC rejected: {e}"),
                written.as_bytes(),
            ),
        }
        let mut bytes = written.into_bytes();
        mutate(&mut s.rng, &mut bytes);
        let text = String::from_utf8_lossy(&bytes).into_owned();
        s.must_not_panic("itc02", case, &bytes, || {
            let _ = parse_itc02(&text);
        });
    }
}

fn fuzz_store(s: &mut Session, iters: u64, columns: &CostColumns) {
    for case in 0..iters {
        let mut store = Store::in_memory(StoreConfig::default());
        for _ in 0..s.rng.gen_range(0..=6u32) {
            let fingerprint = s.rng.gen::<u64>();
            store.record_incumbent(
                fingerprint,
                s.rng.gen_range(1..=64u32),
                s.rng.gen_range(1..=16u32),
                s.rng.gen::<u64>() >> 16,
            );
            if s.rng.gen::<bool>() {
                store.record_columns(fingerprint, columns.clone());
            }
        }
        let bytes = store.to_bytes();
        // Semantic oracle: encode → decode → encode is byte-stable and
        // decoding our own bytes never warns.
        match Store::from_bytes(&bytes, StoreConfig::default()) {
            Ok(decoded) => {
                if !decoded.warnings().is_empty() {
                    s.fail(
                        "store",
                        case,
                        format!("own bytes warned: {:?}", decoded.warnings()),
                        &bytes,
                    );
                } else if decoded.to_bytes() != bytes {
                    s.fail(
                        "store",
                        case,
                        "encode → decode → encode is not byte-stable".to_owned(),
                        &bytes,
                    );
                }
            }
            Err(e) => s.fail("store", case, format!("own bytes rejected: {e}"), &bytes),
        }
        let mut mutated = bytes;
        mutate(&mut s.rng, &mut mutated);
        s.must_not_panic("store", case, &mutated, || {
            // A mutated file may decode with warnings or fail (a bit
            // flip in the version field reads as a future version) —
            // either way, no panic.
            let _ = Store::from_bytes(&mutated, StoreConfig::default());
        });
    }
}

/// A hostile framed byte stream: valid serve lines, junk, carriage
/// returns, an occasional oversized line, sometimes an unterminated
/// tail — the traffic shapes a network peer can produce.
fn gen_net_stream(rng: &mut StdRng) -> Vec<u8> {
    let mut bytes = Vec::new();
    for _ in 0..rng.gen_range(1..=6u32) {
        match rng.gen_range(0u32..8) {
            0 => {
                let over = MAX_LINE_LEN + rng.gen_range(1..=65usize);
                bytes.extend(std::iter::repeat_n(b'z', over));
            }
            1 => {
                for _ in 0..rng.gen_range(1..=24u32) {
                    let byte = rng.gen::<u8>();
                    if byte != b'\n' {
                        bytes.push(byte);
                    }
                }
            }
            2 => bytes.extend_from_slice(b"cancel 99999999999999999999999999"),
            _ => {
                bytes.extend(gen_serve_line(rng).into_bytes());
                if rng.gen::<bool>() {
                    bytes.push(b'\r');
                }
            }
        }
        bytes.push(b'\n');
    }
    if rng.gen::<bool>() {
        bytes.pop();
    }
    bytes
}

/// Frames `stream` pushed in random chunks (down to single bytes).
fn frames_chunked(rng: &mut StdRng, stream: &[u8]) -> Vec<Frame> {
    let mut framer = LineFramer::new();
    let mut frames = Vec::new();
    let mut rest = stream;
    while !rest.is_empty() {
        let take = rng.gen_range(1..=rest.len().min(97));
        frames.extend(framer.push(&rest[..take]));
        rest = &rest[take..];
    }
    frames.extend(framer.finish());
    frames
}

fn fuzz_net(s: &mut Session, iters: u64) {
    for case in 0..iters {
        let stream = gen_net_stream(&mut s.rng);
        // Semantic oracle: framing is chunking-invariant — the same
        // bytes split or merged arbitrarily yield the same frames.
        let mut whole = LineFramer::new();
        let mut reference = whole.push(&stream);
        reference.extend(whole.finish());
        let chunked = frames_chunked(&mut s.rng, &stream);
        if chunked != reference {
            s.fail(
                "net",
                case,
                "framing depends on chunk boundaries".to_owned(),
                &stream,
            );
        }
        // An oversized line never wedges the connection: a valid line
        // appended after the whole stream still frames intact.
        let mut resync = LineFramer::new();
        let mut tail = resync.push(&stream);
        tail.extend(resync.push(b"\nstats\n"));
        match tail.last() {
            Some(Frame::Line(line)) if line == "stats" => {}
            other => s.fail(
                "net",
                case,
                format!("no resync after the stream: {other:?}"),
                &stream,
            ),
        }
        // Robustness: every framed line goes through the real serve
        // grammar; rejections must render as well-formed single-line
        // versioned error lines — never a panic.
        s.must_not_panic("net", case, &stream, || {
            for frame in &reference {
                let detail = match frame {
                    Frame::Oversized => "line exceeds the frame limit".to_owned(),
                    Frame::Line(text) => match parse_serve_line(text, &resolve) {
                        Err(message) => message,
                        Ok(_) => continue,
                    },
                };
                let line = error_line(0, "parse", &detail);
                assert!(
                    line.ends_with('\n') && !line[..line.len() - 1].contains('\n'),
                    "error line spans lines: {line:?}"
                );
                assert!(
                    line.starts_with("{\"v\": 1, \"client\": 0, \"error\": "),
                    "error line lost its envelope: {line:?}"
                );
            }
        });
        // And once more on mutated bytes: frame + parse arbitrary
        // garbage without panicking.
        let mut mutated = stream;
        mutate(&mut s.rng, &mut mutated);
        s.must_not_panic("net", case, &mutated, || {
            let mut framer = LineFramer::new();
            let mut frames = framer.push(&mutated);
            frames.extend(framer.finish());
            for frame in frames {
                if let Frame::Line(text) = frame {
                    let _ = parse_serve_line(&text, &resolve);
                }
            }
        });
    }
}

/// One event of a generated trace, kept structured so the same steps
/// build a flat [`Trace`], a [`ShardTrace`], a journal record stream
/// and a failure artifact.
enum TraceStep {
    Submit {
        generation: u32,
        request: Request,
        /// Explicit shard pin for the sharded builds (`None` = routed).
        pin: Option<usize>,
    },
    Cancel {
        generation: u32,
        id: usize,
    },
}

/// A structure-aware random trace: submits against the fast benchmark
/// SOCs plus cancels that always reference an earlier submission. No
/// budgets or deadlines — the oracle is bit-identity, and those only
/// truncate.
fn gen_trace_steps(rng: &mut StdRng) -> Vec<TraceStep> {
    let mut steps = Vec::new();
    let mut submitted = 0usize;
    let mut generation = 0u32;
    for _ in 0..rng.gen_range(3..=7u32) {
        generation += rng.gen_range(0..=1u32);
        if submitted > 0 && rng.gen_range(0u32..5) == 0 {
            steps.push(TraceStep::Cancel {
                generation,
                id: rng.gen_range(0..submitted),
            });
        } else {
            let soc = resolve(["d695", "p21241", "p31108"][rng.gen_range(0..3usize)])
                .expect("benchmark SOCs resolve");
            let width = rng.gen_range(8..=24u32);
            let request = Request::new(soc, width)
                .expect("widths >= 8 are valid")
                .max_tams(rng.gen_range(1..=3u32))
                .priority(rng.gen_range(0..=9u32) as i32);
            let pin = rng.gen::<bool>().then(|| rng.gen_range(0..4usize));
            steps.push(TraceStep::Submit {
                generation,
                request,
                pin,
            });
            submitted += 1;
        }
    }
    steps
}

fn flat_trace(steps: &[TraceStep]) -> Trace {
    steps.iter().fold(Trace::new(), |trace, step| match step {
        TraceStep::Submit {
            generation,
            request,
            ..
        } => trace.submit_at(*generation, request.clone()),
        TraceStep::Cancel { generation, id } => trace.cancel_at(*generation, *id),
    })
}

fn shard_trace(steps: &[TraceStep]) -> ShardTrace {
    steps
        .iter()
        .fold(ShardTrace::new(), |trace, step| match step {
            TraceStep::Submit {
                generation,
                request,
                pin: Some(shard),
            } => trace.submit_pinned_at(*generation, *shard, request.clone()),
            TraceStep::Submit {
                generation,
                request,
                pin: None,
            } => trace.submit_at(*generation, request.clone()),
            TraceStep::Cancel { generation, id } => trace.cancel_at(*generation, *id),
        })
}

/// Human-readable step list, the failure artifact for this surface.
fn render_steps(steps: &[TraceStep]) -> String {
    let mut text = String::new();
    for step in steps {
        match step {
            TraceStep::Submit {
                generation,
                request,
                pin,
            } => {
                let pin = pin.map_or(String::new(), |shard| format!("/{shard}"));
                text.push_str(&format!(
                    "@{generation}{pin} {} {} {} priority={}\n",
                    request.soc.name(),
                    request.width,
                    request.max_tams,
                    request.priority
                ));
            }
            TraceStep::Cancel { generation, id } => {
                text.push_str(&format!("@{generation} cancel {id}\n"));
            }
        }
    }
    text
}

/// The winner fields of an outcome line: the shard stamp (a routing
/// artifact across shard shapes) and the prune-statistics tail (warm
/// seeds record less work) are stripped; everything else must be
/// byte-identical.
fn outcome_winner(outcome: &RequestOutcome) -> String {
    let line = outcome.to_json_line();
    let head = line.split(", \"stats\": ").next().unwrap_or(&line);
    match (head.find(", \"shard\": "), head.find(", \"soc\": ")) {
        (Some(start), Some(end)) if start < end => format!("{}{}", &head[..start], &head[end..]),
        _ => head.to_owned(),
    }
}

/// The winner views of an outcome stream, ordered by submission id.
fn winners_by_id(outcomes: &[RequestOutcome]) -> Vec<String> {
    let mut winners: Vec<(usize, String)> = outcomes
        .iter()
        .map(|outcome| (outcome.index, outcome_winner(outcome)))
        .collect();
    winners.sort_by_key(|&(index, _)| index);
    winners.into_iter().map(|(_, winner)| winner).collect()
}

/// Completed heuristic evaluations of one outcome — the "work" in the
/// work-strictly-shrinks warm-start invariant.
fn completed_evals(outcome: &RequestOutcome) -> u64 {
    let line = outcome.to_json_line();
    line.rfind("\"completed\": ")
        .and_then(|at| {
            let rest = &line[at + "\"completed\": ".len()..];
            let end = rest.find([',', '}'])?;
            rest[..end].trim().parse().ok()
        })
        .unwrap_or(0)
}

/// A fresh [`LiveConfig`] for trace replay, optionally store-backed.
fn trace_config(threads: usize, store: Option<StoreBinding>) -> LiveConfig {
    let mut config = LiveConfig::with_threads(threads);
    config.store = store;
    config
}

fn fuzz_trace(s: &mut Session, iters: u64) {
    // Every case replays real co-optimizations a dozen ways; scale the
    // budget down so `--surface all` stays minutes, not hours.
    let iters = (iters / 10).max(5);
    for case in 0..iters {
        let steps = gen_trace_steps(&mut s.rng);
        let artifact = render_steps(&steps);
        let (reference, _) = LiveQueue::replay(flat_trace(&steps), trace_config(1, None));
        let cold_lines: Vec<String> = reference.iter().map(RequestOutcome::to_json_line).collect();
        // Streams interleave cancellations and completions; key the
        // winner views by submission id so differently-ordered streams
        // (sharded replay goes shard-by-shard) compare request-wise.
        let cold_winners: Vec<String> = winners_by_id(&reference);

        // Oracle 1a: flat replay is byte-identical across threads.
        for threads in [2, 8] {
            let (outcomes, _) = LiveQueue::replay(flat_trace(&steps), trace_config(threads, None));
            let lines: Vec<String> = outcomes.iter().map(RequestOutcome::to_json_line).collect();
            if lines != cold_lines {
                s.fail(
                    "trace",
                    case,
                    format!("flat replay drifted at {threads} threads"),
                    artifact.as_bytes(),
                );
            }
        }
        // Oracle 1b: per shard count byte-identical across threads, and
        // winner-identical to the flat replay across shard shapes.
        for shards in [1, 2, 4] {
            let (base, _) =
                ShardedQueue::replay(shard_trace(&steps), trace_config(1, None), shards);
            let base_lines: Vec<String> = base.iter().map(RequestOutcome::to_json_line).collect();
            for threads in [2, 8] {
                let (outcomes, _) =
                    ShardedQueue::replay(shard_trace(&steps), trace_config(threads, None), shards);
                let lines: Vec<String> =
                    outcomes.iter().map(RequestOutcome::to_json_line).collect();
                if lines != base_lines {
                    s.fail(
                        "trace",
                        case,
                        format!("sharded replay drifted at {shards} shards, {threads} threads"),
                        artifact.as_bytes(),
                    );
                }
            }
            let winners = winners_by_id(&base);
            if winners != cold_winners {
                let diff = winners
                    .iter()
                    .zip(&cold_winners)
                    .find(|(sharded, flat)| sharded != flat)
                    .map(|(sharded, flat)| format!("\n  flat:    {flat}\n  sharded: {sharded}"))
                    .unwrap_or_default();
                s.fail(
                    "trace",
                    case,
                    format!("winners drifted between flat and {shards}-shard replay{diff}"),
                    artifact.as_bytes(),
                );
            }
        }

        // Oracle 2: a store-backed restart mid-trace. A prefix run
        // warms a store; the store round-trips through bytes (the
        // restart); re-running the whole trace against the warmed
        // store — the trace is its own recovery script — must produce
        // identical winners with no more work per request.
        let max_generation = steps
            .iter()
            .map(|step| match step {
                TraceStep::Submit { generation, .. } | TraceStep::Cancel { generation, .. } => {
                    *generation
                }
            })
            .max()
            .unwrap_or(0);
        let split = s.rng.gen_range(0..=max_generation);
        let prefix: Vec<TraceStep> = steps
            .iter()
            .filter(|step| match step {
                TraceStep::Submit { generation, .. } | TraceStep::Cancel { generation, .. } => {
                    *generation < split
                }
            })
            .map(|step| match step {
                TraceStep::Submit {
                    generation,
                    request,
                    pin,
                } => TraceStep::Submit {
                    generation: *generation,
                    request: request.clone(),
                    pin: *pin,
                },
                TraceStep::Cancel { generation, id } => TraceStep::Cancel {
                    generation: *generation,
                    id: *id,
                },
            })
            .collect();
        // Cancels reference submission ids; a time-prefix only ever
        // references its own submissions, but a cancel of an id whose
        // submit sits at the same generation may cross the cut — drop
        // those to keep the prefix self-contained.
        let prefix_submits = prefix
            .iter()
            .filter(|step| matches!(step, TraceStep::Submit { .. }))
            .count();
        let prefix: Vec<TraceStep> = prefix
            .into_iter()
            .filter(|step| match step {
                TraceStep::Cancel { id, .. } => *id < prefix_submits,
                TraceStep::Submit { .. } => true,
            })
            .collect();
        let warm_binding = StoreBinding::new(Store::in_memory(StoreConfig::default()));
        let _ = LiveQueue::replay(
            flat_trace(&prefix),
            trace_config(2, Some(warm_binding.clone())),
        );
        let bytes = warm_binding.store.lock().map(|store| store.to_bytes());
        let revived = bytes
            .ok()
            .and_then(|bytes| Store::from_bytes(&bytes, StoreConfig::default()).ok());
        match revived {
            None => s.fail(
                "trace",
                case,
                "warmed store did not survive a byte round-trip".to_owned(),
                artifact.as_bytes(),
            ),
            Some(revived) => {
                let binding = StoreBinding::new(revived);
                let (warm, _) =
                    LiveQueue::replay(flat_trace(&steps), trace_config(2, Some(binding)));
                if winners_by_id(&warm) != cold_winners {
                    s.fail(
                        "trace",
                        case,
                        format!("winners drifted across a restart at generation {split}"),
                        artifact.as_bytes(),
                    );
                }
                let cold_work: std::collections::BTreeMap<usize, u64> = reference
                    .iter()
                    .map(|outcome| (outcome.index, completed_evals(outcome)))
                    .collect();
                for warm in &warm {
                    let cold = cold_work.get(&warm.index).copied().unwrap_or(0);
                    if completed_evals(warm) > cold {
                        s.fail(
                            "trace",
                            case,
                            format!(
                                "request {} did more work warm ({}) than cold ({cold})",
                                warm.index,
                                completed_evals(warm)
                            ),
                            artifact.as_bytes(),
                        );
                    }
                }
            }
        }

        // Oracle 3: the write-ahead journal round-trips the trace's
        // accept-time records across a reopen, and `unsealed` recovers
        // exactly the unanswered ids; mutated journal bytes decode
        // leniently (torn tails) or reject — never a panic.
        fuzz_trace_journal(s, case, &steps, artifact.as_bytes());
    }
}

/// The journal leg of the trace surface: real file round-trip plus
/// byte-level corruption.
fn fuzz_trace_journal(s: &mut Session, case: u64, steps: &[TraceStep], artifact: &[u8]) {
    let dir = std::env::temp_dir().join(format!("tamopt-fuzz-{}-{case}", std::process::id()));
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join("trace.tamjrnl");
    let mut written = Vec::new();
    let mut submits: Vec<u64> = Vec::new();
    let mut cancelled = std::collections::BTreeSet::new();
    let mut sealed = std::collections::BTreeSet::new();
    {
        let policy = match s.rng.gen_range(0u32..3) {
            0 => SyncPolicy::Always,
            1 => SyncPolicy::Interval(s.rng.gen_range(1..=8u32)),
            _ => SyncPolicy::Never,
        };
        let mut journal = match Journal::open(&path, policy) {
            Ok(opened) => opened.journal,
            Err(e) => {
                s.fail("trace", case, format!("journal open failed: {e}"), artifact);
                let _ = std::fs::remove_dir_all(&dir);
                return;
            }
        };
        for (id, step) in steps.iter().enumerate() {
            let id = id as u64;
            let record = match step {
                TraceStep::Submit { request, pin, .. } => {
                    submits.push(id);
                    JournalRecord::Submit {
                        id,
                        client: s.rng.gen::<bool>().then(|| s.rng.gen_range(0..4u64)),
                        shard: pin.map(|shard| shard as u64),
                        line: format!(
                            "{} {} {}",
                            request.soc.name(),
                            request.width,
                            request.max_tams
                        ),
                    }
                }
                TraceStep::Cancel { id: target, .. } => {
                    cancelled.insert(*target as u64);
                    JournalRecord::Cancel { id: *target as u64 }
                }
            };
            written.push(record.clone());
            if journal.append(&record).is_err() {
                s.fail("trace", case, "journal append failed".to_owned(), artifact);
            }
            // Seal a random subset of what is in flight.
            if s.rng.gen_range(0u32..3) == 0 {
                if let Some(&id) = submits.iter().find(|id| !sealed.contains(*id)) {
                    sealed.insert(id);
                    let record = JournalRecord::Sealed { id };
                    written.push(record.clone());
                    if journal.append(&record).is_err() {
                        s.fail("trace", case, "journal append failed".to_owned(), artifact);
                    }
                }
            }
        }
    }
    // Reopen: the records must round-trip exactly, and the unsealed
    // set must be precisely the accepted-but-unanswered ids with their
    // cancellation flags.
    match Journal::open(&path, SyncPolicy::Never) {
        Ok(opened) => {
            if opened.records != written {
                s.fail(
                    "trace",
                    case,
                    "journal records did not round-trip a reopen".to_owned(),
                    artifact,
                );
            }
            if !opened.warnings.is_empty() {
                s.fail(
                    "trace",
                    case,
                    format!("clean journal warned on reopen: {:?}", opened.warnings),
                    artifact,
                );
            }
            let recovered = unsealed(&opened.records);
            let want: Vec<u64> = submits
                .iter()
                .copied()
                .filter(|id| !sealed.contains(id))
                .collect();
            let got: Vec<u64> = recovered.iter().map(|r| r.id).collect();
            if got != want {
                s.fail(
                    "trace",
                    case,
                    format!("unsealed recovered {got:?}, accepted-but-unsealed is {want:?}"),
                    artifact,
                );
            }
            for r in &recovered {
                if r.cancelled != cancelled.contains(&r.id) {
                    s.fail(
                        "trace",
                        case,
                        format!("request {} lost its cancellation flag", r.id),
                        artifact,
                    );
                }
            }
        }
        Err(e) => s.fail(
            "trace",
            case,
            format!("journal reopen failed: {e}"),
            artifact,
        ),
    }
    // Corruption leg: mutated bytes must decode leniently or reject —
    // never panic — and a reopen of the mutated file must not either.
    if let Ok(bytes) = std::fs::read(&path) {
        let mut mutated = bytes;
        mutate(&mut s.rng, &mut mutated);
        s.must_not_panic("trace", case, &mutated, || {
            let _ = decode_journal(&mutated);
        });
        let torn = dir.join("torn.tamjrnl");
        if std::fs::write(&torn, &mutated).is_ok() {
            s.must_not_panic("trace", case, &mutated, || {
                let _ = Journal::open(&torn, SyncPolicy::Never);
            });
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "fuzz: surface={} iters={} seed={} (reproduce with --seed {})",
        args.surface, args.iters, args.seed, args.seed
    );

    // Silence the per-panic backtrace spew; failures are recorded with
    // their inputs instead.
    std::panic::set_hook(Box::new(|_| {}));

    let mut session = Session {
        rng: StdRng::seed_from_u64(args.seed),
        seed: args.seed,
        failures: Vec::new(),
    };
    // One shared columns payload: real wrapper data, computed once.
    let table = TimeTable::new(&benchmarks::d695(), 16).expect("d695 table");
    let columns = CostColumns::from_table(&table);

    let run = |surface: &str| args.surface == "all" || args.surface == surface;
    if run("manifest") {
        fuzz_manifest(&mut session, args.iters);
    }
    if run("serve") {
        fuzz_serve(&mut session, args.iters);
    }
    if run("itc02") {
        fuzz_itc02(&mut session, args.iters);
    }
    if run("store") {
        fuzz_store(&mut session, args.iters, &columns);
    }
    if run("net") {
        fuzz_net(&mut session, args.iters);
    }
    if run("trace") {
        fuzz_trace(&mut session, args.iters);
    }
    let _ = std::panic::take_hook();

    if session.failures.is_empty() {
        println!("fuzz: all surfaces clean");
        return ExitCode::SUCCESS;
    }
    let dir = std::path::Path::new("fuzz-failures");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("fuzz: cannot create {}: {e}", dir.display());
    }
    for failure in &session.failures {
        let name = format!(
            "{}-seed{}-case{}.bin",
            failure.surface, session.seed, failure.case
        );
        let path = dir.join(&name);
        match std::fs::write(&path, &failure.input) {
            Ok(()) => eprintln!("fuzz: {}: {} -> {}", failure.surface, failure.reason, name),
            Err(e) => eprintln!("fuzz: cannot write {}: {e}", path.display()),
        }
    }
    eprintln!(
        "fuzz: {} failure(s); inputs under {} (reproduce with --seed {})",
        session.failures.len(),
        dir.display(),
        session.seed
    );
    ExitCode::FAILURE
}
