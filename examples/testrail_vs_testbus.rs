//! Test bus vs TestRail: quantify the architecture choice the paper
//! makes implicitly.
//!
//! The paper adopts the *test bus* model throughout ("As in [8], we use
//! the test bus model for TAMs"). Its reference [11] proposed the
//! *TestRail* — daisy-chained wrappers whose bypass flops tax every
//! test on a shared rail by `p + 1` cycles per peer. This example
//! optimizes both architectures on the same SOC and width budget and
//! prints the penalty the bus model avoids.
//!
//! Run with: `cargo run --release --example testrail_vs_testbus`

use tamopt::cost::{BusCost, GateWeights, RailCost};
use tamopt::rail::{design_rails, RailConfig, RailCostModel};
use tamopt::{benchmarks, CoOptimizer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let soc = benchmarks::d695();
    println!(
        "SOC {}: test bus vs TestRail at equal wire budgets\n",
        soc.name()
    );
    println!(
        "{:>4}  {:>14} {:>10}  {:>16} {:>10}  {:>8}",
        "W", "bus partition", "bus T", "rail partition", "rail T", "overhead"
    );
    for width in [16u32, 24, 32, 48, 64] {
        let bus = CoOptimizer::new(soc.clone(), width).max_tams(6).run()?;
        let model = RailCostModel::new(&soc, width)?;
        let rails = design_rails(&model, width, &RailConfig::up_to_rails(6))?;
        println!(
            "{:>4}  {:>14} {:>10}  {:>16} {:>10}  {:>7.1} %",
            width,
            bus.tams.to_string(),
            bus.soc_time(),
            rails.rails.to_string(),
            rails.soc_time(),
            (rails.soc_time() as f64 / bus.soc_time() as f64 - 1.0) * 100.0
        );
    }

    println!("\ndetails at W = 32:");
    let bus = CoOptimizer::new(soc.clone(), 32).max_tams(6).run()?;
    println!("{}", bus.report());
    let model = RailCostModel::new(&soc, 32)?;
    let rails = design_rails(&model, 32, &RailConfig::up_to_rails(6))?;
    println!("{}", rails.report());

    // The other side of the trade: silicon. Rails need no return-path
    // multiplexers but pay a bypass flop per rail wire per core.
    let weights = GateWeights::default();
    let bus_cost = BusCost::of(&bus);
    let rail_cost = RailCost::of(&rails, &soc);
    println!("hardware (gate equivalents, first-order model):");
    println!(
        "  test bus : {:>8.0} GE  ({} boundary cells, {} mux2, {} bypass flops)",
        bus_cost.gate_equivalents(&weights),
        bus_cost.boundary_cells,
        bus_cost.mux_equivalents,
        bus_cost.bypass_flops
    );
    println!(
        "  TestRail : {:>8.0} GE  ({} boundary cells, {} mux2, {} bypass flops)\n",
        rail_cost.gate_equivalents(&weights),
        rail_cost.boundary_cells,
        rail_cost.mux_equivalents,
        rail_cost.bypass_flops
    );
    println!("The rail optimizer splits cores across more, narrower rails than the");
    println!("bus optimizer does: shedding bypass peers is worth more than width.");
    println!("A negative overhead means the rail search (which evaluates every");
    println!("partition with local search) found a split the bus heuristic's pruned");
    println!("search missed — the same anomalous behaviour the paper documents for");
    println!("its own Partition_evaluate.");
    Ok(())
}
