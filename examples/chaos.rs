//! Seeded multi-client chaos harness over the network front-end.
//!
//! Generates random multi-client scenarios — concurrent submitters,
//! mid-run disconnects, partial writes mid-frame, stalled readers,
//! malformed lines, out-of-namespace cancels — and checks them three
//! ways:
//!
//! * **replay**: the deterministic twin ([`tamopt::service::chaos`]).
//!   Every scenario must produce byte-identical per-client transcripts
//!   and final reports across threads {1, 2, 8} × shards
//!   {flat, 1, 2, 4} — the workspace determinism contract extended to
//!   hostile multi-client traffic.
//! * **socket**: the same scenario driven over real TCP connections
//!   against a live [`tamopt::service::NetServer`]. The stream
//!   interleaving is scheduler-dependent, so the oracles are semantic:
//!   every submission is answered exactly once (sealed shutdown
//!   included), every malformed line gets its versioned error line,
//!   disconnects neither leak requests nor perturb siblings — even
//!   when the disconnect tears a frame in half — and nobody reads
//!   until shutdown, so every client is a "stalled reader" exercising
//!   the writer buffering.
//! * **crash**: a kill-restart storm against the real `tamopt serve
//!   --journal --store` binary. A random workload is fed to a
//!   journal-backed daemon which is `SIGKILL`ed mid-workload and
//!   restarted; the oracles are the crash-safety contract itself —
//!   every journalled (accepted) request is answered across the two
//!   incarnations, recovered winners are byte-identical to an
//!   uninterrupted run's, and the journal compacts to its empty
//!   header once everything is sealed.
//!
//! ```text
//! cargo run --release --example chaos -- [--seed S] [--scenarios K] \
//!     [--clients N] [--events M] [--mode all|replay|socket|crash]
//! ```
//!
//! On any violation the offending scenario script is written to
//! `chaos-failures/` (reproduce with the printed seed) and the process
//! exits non-zero. Crash mode needs the `tamopt` binary built in the
//! same profile (`cargo build [--release] -p tamopt`); under
//! `--mode all` it is skipped with a warning when the binary is
//! missing, under `--mode crash` that is a failure.

use std::collections::{BTreeMap, BTreeSet};
use std::io::{BufRead as _, BufReader, Write as _};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use rand::{rngs::StdRng, Rng, SeedableRng};
use tamopt::cli::{parse_serve_line, ServeLine};
use tamopt::service::chaos::replay;
use tamopt::service::{
    ChaosScenario, ClientScript, LineParser, LiveConfig, NetDirective, NetListener, NetServer,
};
use tamopt::soc::{benchmarks, Soc};
use tamopt::store::journal::{decode, JournalRecord};

const BENCHES: [&str; 3] = ["d695", "p21241", "p31108"];

fn resolve(name: &str) -> Result<Soc, String> {
    match name {
        "d695" => Ok(benchmarks::d695()),
        "p21241" => Ok(benchmarks::p21241()),
        "p31108" => Ok(benchmarks::p31108()),
        other => Err(format!("unknown SOC `{other}`")),
    }
}

/// The serve grammar adapted for the network path, exactly as the
/// `tamopt serve --listen` binary does it: `@` tags are trace-only.
fn net_parse(line: &str) -> Result<Option<NetDirective>, String> {
    match parse_serve_line(line, &resolve)? {
        None => Ok(None),
        Some((Some(_tag), _)) => {
            Err("@<generation> tags are only valid in trace mode, not over the network".to_owned())
        }
        Some((None, ServeLine::Submit(request))) => Ok(Some(NetDirective::Submit(request))),
        Some((None, ServeLine::Cancel(id))) => Ok(Some(NetDirective::Cancel(id))),
        Some((None, ServeLine::Stats)) => Ok(Some(NetDirective::Stats)),
    }
}

fn usage() -> String {
    "usage: chaos [--seed S] [--scenarios K] [--clients N] [--events M] \
     [--mode all|replay|socket|crash]"
        .to_owned()
}

struct Args {
    seed: u64,
    scenarios: u64,
    clients: usize,
    events: usize,
    mode: String,
}

fn parse_args() -> Result<Args, String> {
    let mut seed = 0xC4A0_5202;
    let mut scenarios = 3;
    let mut clients = 3;
    let mut events = 6;
    let mut mode = "all".to_owned();
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |flag: &str| argv.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--seed" => seed = value("--seed")?.parse().map_err(|_| usage())?,
            "--scenarios" => scenarios = value("--scenarios")?.parse().map_err(|_| usage())?,
            "--clients" => clients = value("--clients")?.parse().map_err(|_| usage())?,
            "--events" => events = value("--events")?.parse().map_err(|_| usage())?,
            "--mode" => mode = value("--mode")?,
            _ => return Err(usage()),
        }
    }
    if !["all", "replay", "socket", "crash"].contains(&mode.as_str()) {
        return Err(usage());
    }
    if clients == 0 || events == 0 {
        return Err(usage());
    }
    Ok(Args {
        seed,
        scenarios,
        clients,
        events,
        mode,
    })
}

/// One generated client event, kept alongside its script form so the
/// socket driver and the failure artifact can replay it.
#[derive(Clone)]
enum Event {
    Line(String),
    /// The same frame written in two chunks with a pause in between —
    /// the framer must reassemble it; semantically identical to
    /// [`Event::Line`].
    Partial(String),
    /// The client stops reading and writing for a while; the server's
    /// writer keeps streaming into the socket buffer unperturbed.
    Stall,
    /// Drop the connection — after tearing off a dangling half-frame,
    /// which the server must discard without disturbing siblings.
    Disconnect,
}

/// A generated scenario: per-client generation-tagged events.
struct Scenario {
    events: Vec<Vec<(u32, Event)>>,
}

impl Scenario {
    fn to_chaos(&self) -> ChaosScenario {
        ChaosScenario::new(
            self.events
                .iter()
                .map(|events| {
                    let mut script = ClientScript::new();
                    for (generation, event) in events {
                        script = match event {
                            Event::Line(line) => script.line_at(*generation, line.clone()),
                            // The replay twin sees frames, not bytes: a
                            // reassembled partial is just its line, a
                            // stall is invisible, and a dangling
                            // half-frame never becomes a frame at all.
                            Event::Partial(line) => script.line_at(*generation, line.clone()),
                            Event::Stall => script,
                            Event::Disconnect => script.disconnect_at(*generation),
                        };
                    }
                    script
                })
                .collect(),
        )
    }

    /// Human-readable script, written to `chaos-failures/` on a
    /// violation.
    fn render(&self) -> String {
        let mut text = String::new();
        for (client, events) in self.events.iter().enumerate() {
            for (generation, event) in events {
                let line = match event {
                    Event::Line(line) => line.clone(),
                    Event::Partial(line) => format!("<partial> {line}"),
                    Event::Stall => "<stall>".to_owned(),
                    Event::Disconnect => "<disconnect>".to_owned(),
                };
                text.push_str(&format!("client {client} @{generation}: {line}\n"));
            }
        }
        text
    }
}

/// One valid network submit line, small enough for a dense grid sweep.
fn gen_submit(rng: &mut StdRng) -> String {
    let soc = BENCHES[rng.gen_range(0..BENCHES.len())];
    let width = rng.gen_range(8..=32u32);
    let max_tams = rng.gen_range(1..=4u32);
    let mut line = format!("{soc} {width} {max_tams}");
    if rng.gen::<bool>() {
        line.push_str(&format!(" priority={}", rng.gen_range(0..=9u32)));
    }
    line
}

fn gen_scenario(rng: &mut StdRng, clients: usize, events: usize) -> Scenario {
    let scripts = (0..clients)
        .map(|_| {
            let mut script: Vec<(u32, Event)> = Vec::new();
            let mut generation = 0u32;
            let mut disconnected = false;
            for _ in 0..events {
                if disconnected {
                    break;
                }
                generation += rng.gen_range(0..=1u32);
                let event = match rng.gen_range(0u32..12) {
                    // Mostly real work, so the grid exercises the queue.
                    0..=5 => Event::Line(gen_submit(rng)),
                    6 => Event::Line(format!("cancel {}", rng.gen_range(0..events))),
                    7 => Event::Line("totally not a request".to_owned()),
                    8 => Event::Line(format!("@{} d695 16 2", rng.gen_range(0..4u32))),
                    9 => Event::Partial(gen_submit(rng)),
                    10 => Event::Stall,
                    _ => {
                        disconnected = true;
                        Event::Disconnect
                    }
                };
                script.push((generation, event));
            }
            script
        })
        .collect();
    Scenario { events: scripts }
}

struct Session {
    seed: u64,
    failures: Vec<(u64, String, String)>,
}

impl Session {
    fn fail(&mut self, scenario_id: u64, reason: String, script: String) {
        eprintln!("chaos: scenario {scenario_id}: {reason}");
        self.failures.push((scenario_id, reason, script));
    }
}

/// The replay grid: threads {1, 2, 8} × shards {flat, 1, 2, 4} must be
/// byte-identical (transcripts and wall-clock-free report).
fn check_replay(s: &mut Session, id: u64, scenario: &Scenario) {
    let chaos = scenario.to_chaos();
    for shards in [None, Some(1), Some(2), Some(4)] {
        let reference = replay(&chaos, LiveConfig::with_threads(1), shards, &net_parse);
        for threads in [2, 8] {
            let run = replay(
                &chaos,
                LiveConfig::with_threads(threads),
                shards,
                &net_parse,
            );
            if run.transcripts != reference.transcripts {
                s.fail(
                    id,
                    format!("transcripts drifted at threads {threads}, shards {shards:?}"),
                    scenario.render(),
                );
            }
            if run.stable_report() != reference.stable_report() {
                s.fail(
                    id,
                    format!("report drifted at threads {threads}, shards {shards:?}"),
                    scenario.render(),
                );
            }
        }
    }
}

/// What the socket driver expects back per client, tallied while
/// sending.
#[derive(Default)]
struct Expected {
    submits: usize,
    parse_errors: usize,
    unknown_ids: usize,
    stats: usize,
}

/// What one client actually received, tallied by line envelope.
#[derive(Default)]
struct Tally {
    outcomes: usize,
    errors: usize,
    stats: usize,
}

enum Kind {
    Outcome,
    Error,
    Stats,
}

/// Classifies a received line by its envelope. Outcome lines are
/// `{"v": 1, "id": L, "client": C, ...}`; error and stats lines lead
/// with the client id instead. Substrings are not enough — outcome
/// lines legitimately contain a `"stats"` payload of prune counters.
fn classify(client: usize, line: &str) -> Option<Kind> {
    if line.starts_with("{\"v\": 1, \"id\": ") {
        return line
            .contains(&format!("\"client\": {client}"))
            .then_some(Kind::Outcome);
    }
    let envelope = format!("{{\"v\": 1, \"client\": {client}, ");
    let rest = line.strip_prefix(&envelope)?;
    if rest.starts_with("\"error\": ") {
        Some(Kind::Error)
    } else if rest.starts_with("\"stats\": ") {
        Some(Kind::Stats)
    } else {
        None
    }
}

/// Reads lines into `tally` until the **barrier** stats response: the
/// client may still have `pending_stats` unread responses to scenario
/// `stats` lines, which are tallied; the one after those is the
/// barrier's own, left untallied. Errors on EOF or a bad envelope.
fn read_until_stats(
    client: usize,
    reader: &mut BufReader<TcpStream>,
    tally: &mut Tally,
    mut pending_stats: usize,
) -> Result<(), String> {
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => return Err(format!("client {client}: EOF before the stats barrier")),
            Ok(_) => match classify(client, &line) {
                Some(Kind::Outcome) => tally.outcomes += 1,
                Some(Kind::Error) => tally.errors += 1,
                Some(Kind::Stats) => {
                    if pending_stats == 0 {
                        return Ok(());
                    }
                    pending_stats -= 1;
                    tally.stats += 1;
                }
                None => return Err(format!("client {client}: bad envelope: {line}")),
            },
            Err(e) => return Err(format!("client {client}: read failed: {e}")),
        }
    }
}

/// Drives `scenario` over real TCP connections and checks the semantic
/// oracles. Nobody reads until their connection ends, so every client
/// also exercises the stalled-reader (writer-buffering) path. Before a
/// disconnect — and before shutdown — the driver runs a `stats`
/// round-trip barrier: each connection's reader processes frames in
/// order, so the response proves every earlier line was registered.
fn check_socket(s: &mut Session, id: u64, scenario: &Scenario, shards: Option<usize>) {
    let parser: LineParser = Arc::new(net_parse);
    let listener = match NetListener::tcp("127.0.0.1:0") {
        Ok(listener) => listener,
        Err(e) => {
            s.fail(
                id,
                format!("cannot bind a loopback port: {e}"),
                scenario.render(),
            );
            return;
        }
    };
    let server = NetServer::start(LiveConfig::with_threads(2), shards, listener, parser);
    let addr = server.addr().to_owned();

    // Connect sequentially, reading each greeting before the next
    // connect, so client ids match scenario positions.
    let mut streams: Vec<Option<(TcpStream, BufReader<TcpStream>)>> = Vec::new();
    for client in 0..scenario.events.len() {
        let stream = TcpStream::connect(&addr).expect("connecting to the chaos server");
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(120)))
            .expect("setting a read timeout");
        let mut reader = BufReader::new(stream.try_clone().expect("cloning the stream"));
        let mut greeting = String::new();
        reader.read_line(&mut greeting).expect("greeting");
        if !greeting.contains(&format!("\"client\": {client}")) {
            s.fail(id, format!("wrong greeting: {greeting}"), scenario.render());
        }
        streams.push(Some((stream, reader)));
    }

    // Merge events exactly as the replay does — (generation, client,
    // position) — and drive them down the live connections.
    let mut merged: Vec<(u32, usize, &Event)> = Vec::new();
    for (client, events) in scenario.events.iter().enumerate() {
        for (generation, event) in events {
            merged.push((*generation, client, event));
        }
    }
    merged.sort_by_key(|&(generation, _, _)| generation);

    let mut expected: Vec<Expected> = scenario
        .events
        .iter()
        .map(|_| Expected::default())
        .collect();
    let mut tallies: Vec<Tally> = scenario.events.iter().map(|_| Tally::default()).collect();
    for (_, client, event) in merged {
        let Some((stream, reader)) = streams[client].as_mut() else {
            continue;
        };
        match event {
            Event::Disconnect => {
                // Barrier first: once the stats response arrives, every
                // earlier line on this connection is registered, so the
                // disconnect cancels exactly the still-outstanding ones
                // and the report accounts for all of them.
                writeln!(stream, "stats").expect("writing the disconnect barrier");
                let pending = expected[client].stats - tallies[client].stats;
                if let Err(reason) = read_until_stats(client, reader, &mut tallies[client], pending)
                {
                    s.fail(id, reason, scenario.render());
                }
                // Tear off mid-frame: the dangling bytes never become a
                // frame, so the server must discard them silently when
                // the connection drops.
                let _ = stream.write_all(b"p21241 16");
                let _ = stream.flush();
                streams[client] = None;
            }
            Event::Stall => {
                // Neither read nor write for a beat; the server's
                // writer keeps streaming into the socket buffer.
                std::thread::sleep(Duration::from_millis(20));
            }
            Event::Partial(line) => {
                // One frame, two writes: the framer must reassemble it
                // into exactly the line the replay twin saw.
                let (head, tail) = line.as_bytes().split_at(line.len() / 2);
                stream.write_all(head).expect("writing a partial frame");
                stream.flush().expect("flushing a partial frame");
                std::thread::sleep(Duration::from_millis(2));
                stream.write_all(tail).expect("completing a partial frame");
                writeln!(stream).expect("terminating a partial frame");
                match net_parse(line) {
                    Err(_) => expected[client].parse_errors += 1,
                    Ok(None) => {}
                    Ok(Some(NetDirective::Submit(_))) => expected[client].submits += 1,
                    Ok(Some(NetDirective::Stats)) => expected[client].stats += 1,
                    Ok(Some(NetDirective::Cancel(local))) => {
                        if local >= expected[client].submits {
                            expected[client].unknown_ids += 1;
                        }
                    }
                }
            }
            Event::Line(line) => {
                writeln!(stream, "{line}").expect("writing a scenario line");
                match net_parse(line) {
                    Err(_) => expected[client].parse_errors += 1,
                    Ok(None) => {}
                    Ok(Some(NetDirective::Submit(_))) => expected[client].submits += 1,
                    Ok(Some(NetDirective::Stats)) => expected[client].stats += 1,
                    Ok(Some(NetDirective::Cancel(local))) => {
                        // In-range cancels are silent; out-of-range ones
                        // are typed errors. "In range" is judged against
                        // what this client has submitted so far.
                        if local >= expected[client].submits {
                            expected[client].unknown_ids += 1;
                        }
                    }
                }
            }
        }
    }

    // Barrier every surviving connection, so shutdown cannot outrun a
    // reader thread that still holds unprocessed frames.
    for (client, entry) in streams.iter_mut().enumerate() {
        let Some((stream, reader)) = entry.as_mut() else {
            continue;
        };
        writeln!(stream, "stats").expect("writing the shutdown barrier");
        let pending = expected[client].stats - tallies[client].stats;
        if let Err(reason) = read_until_stats(client, reader, &mut tallies[client], pending) {
            s.fail(id, reason, scenario.render());
        }
    }

    // Seal the queue: pending work surfaces as cancelled/skipped and
    // streams to the still-connected clients, then the channels close.
    let report = match server.shutdown() {
        Some(report) => report,
        None => {
            s.fail(
                id,
                "shutdown returned no report".to_owned(),
                scenario.render(),
            );
            return;
        }
    };

    let total_submits: usize = expected.iter().map(|e| e.submits).sum();
    if report.outcomes.len() != total_submits {
        s.fail(
            id,
            format!(
                "report accounts for {} outcomes, {} were submitted",
                report.outcomes.len(),
                total_submits
            ),
            scenario.render(),
        );
    }
    for outcome in &report.outcomes {
        if outcome.client.is_none() {
            s.fail(
                id,
                format!("outcome {} lost its client stamp", outcome.index),
                scenario.render(),
            );
        }
    }

    // Drain every surviving connection to EOF — the sealed tail — then
    // compare tallies. Surviving clients get exactly one outcome line
    // per submission; a disconnected client received a prefix (the
    // router drops its lines once the connection is gone).
    let survived: Vec<bool> = streams.iter().map(Option::is_some).collect();
    for (client, entry) in streams.into_iter().enumerate() {
        let Some((stream, mut reader)) = entry else {
            continue;
        };
        drop(stream);
        loop {
            let mut line = String::new();
            match reader.read_line(&mut line) {
                Ok(0) => break,
                Ok(_) => match classify(client, &line) {
                    Some(Kind::Outcome) => tallies[client].outcomes += 1,
                    Some(Kind::Error) => tallies[client].errors += 1,
                    Some(Kind::Stats) => tallies[client].stats += 1,
                    None => s.fail(
                        id,
                        format!("client {client}: bad envelope: {line}"),
                        scenario.render(),
                    ),
                },
                Err(e) => {
                    s.fail(
                        id,
                        format!("client {client} read failed: {e}"),
                        scenario.render(),
                    );
                    break;
                }
            }
        }
    }
    for (client, (want, got)) in expected.iter().zip(&tallies).enumerate() {
        let outcomes_ok = if survived[client] {
            got.outcomes == want.submits
        } else {
            got.outcomes <= want.submits
        };
        if !outcomes_ok {
            s.fail(
                id,
                format!(
                    "client {client}: {} outcome lines for {} submissions (survived: {})",
                    got.outcomes, want.submits, survived[client]
                ),
                scenario.render(),
            );
        }
        if got.errors != want.parse_errors + want.unknown_ids {
            s.fail(
                id,
                format!(
                    "client {client}: {} error lines, expected {} parse + {} unknown-id",
                    got.errors, want.parse_errors, want.unknown_ids
                ),
                scenario.render(),
            );
        }
        if got.stats != want.stats {
            s.fail(
                id,
                format!(
                    "client {client}: {} stats lines for {} requests",
                    got.stats, want.stats
                ),
                scenario.render(),
            );
        }
    }
}

/// A random single-daemon workload for the crash grid: plain submit
/// lines, with enough heavy requests that a kill lands mid-workload.
fn gen_workload(rng: &mut StdRng) -> Vec<String> {
    let count = rng.gen_range(5..=8usize);
    (0..count)
        .map(|_| {
            let soc = BENCHES[rng.gen_range(0..BENCHES.len())];
            let width = rng.gen_range(16..=48u32);
            let max_tams = rng.gen_range(2..=6u32);
            let mut line = format!("{soc} {width} {max_tams}");
            if rng.gen::<bool>() {
                line.push_str(&format!(" priority={}", rng.gen_range(0..=9u32)));
            }
            line
        })
        .collect()
}

/// The `tamopt` binary built in the same profile as this example
/// (`target/<profile>/examples/chaos` → `target/<profile>/tamopt`).
fn tamopt_binary() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let dir = exe.parent()?.parent()?;
    let path = dir.join(format!("tamopt{}", std::env::consts::EXE_SUFFIX));
    path.exists().then_some(path)
}

fn spawn_serve(
    binary: &Path,
    dir: &Path,
    shards: Option<usize>,
    extra: &[&str],
) -> std::io::Result<std::process::Child> {
    let mut command = std::process::Command::new(binary);
    command
        .current_dir(dir)
        .args(["serve", "--threads", "2"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null());
    if let Some(shards) = shards {
        command.args(["--shards", &shards.to_string()]);
    }
    command.args(extra);
    command.spawn()
}

/// `{"v": 1, "id": N, ...}` outcome lines only; the banner and the
/// report tail are filtered out. A `kill -9` can land mid-write, so
/// torn tails are dropped by requiring the closing braces.
fn outcome_lines(stdout: &[u8]) -> Vec<(usize, String)> {
    String::from_utf8_lossy(stdout)
        .lines()
        .filter(|line| line.ends_with("}}"))
        .filter_map(|line| {
            let rest = line.strip_prefix("{\"v\": 1, \"id\": ")?;
            let end = rest.find(',')?;
            let id: usize = rest[..end].parse().ok()?;
            Some((id, line.to_owned()))
        })
        .collect()
}

/// The winner fields of an outcome line: the prune-statistics tail and
/// the shard stamp are stripped. A warm-started redo prunes more
/// (different `stats`), and live shard routing steals by instantaneous
/// load (timing-dependent `shard`), but the winner itself must be
/// byte-identical.
fn winner(line: &str) -> String {
    let head = line.split(", \"stats\": ").next().unwrap_or(line);
    match (head.find(", \"shard\": "), head.find(", \"soc\": ")) {
        (Some(start), Some(end)) if start < end => format!("{}{}", &head[..start], &head[end..]),
        _ => head.to_owned(),
    }
}

/// Crash-and-restart a `--journal --store`-backed daemon mid-workload.
///
/// Oracles: (1) every journalled (accepted) request is answered across
/// the crashed + recovered incarnations, and recovery answers only
/// journalled requests; (2) every answer — pre-crash and recovered
/// alike — carries the same winner as an uninterrupted reference run
/// (prune stats may differ: the warm store makes the redo cheaper);
/// (3) once everything is sealed the journal compacts back to its
/// empty 12-byte header.
fn check_crash_restart(
    s: &mut Session,
    id: u64,
    rng: &mut StdRng,
    shards: Option<usize>,
    binary: &Path,
) {
    let workload = gen_workload(rng);
    let script = workload.join("\n") + "\n";
    let dir = std::env::temp_dir().join(format!("tamopt-chaos-{}-{id}", std::process::id()));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        s.fail(id, format!("cannot create {}: {e}", dir.display()), script);
        return;
    }
    let result = crash_restart_cycle(&dir, &workload, shards, binary);
    let _ = std::fs::remove_dir_all(&dir);
    if let Err(reason) = result {
        s.fail(id, reason, script);
    }
}

fn crash_restart_cycle(
    dir: &Path,
    workload: &[String],
    shards: Option<usize>,
    binary: &Path,
) -> Result<(), String> {
    let script = workload.join("\n") + "\n";

    // Uninterrupted reference run: same shard shape, no persistence.
    let mut reference = spawn_serve(binary, dir, shards, &[])
        .map_err(|e| format!("cannot spawn the reference daemon: {e}"))?;
    reference
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(script.as_bytes())
        .map_err(|e| format!("cannot feed the reference daemon: {e}"))?;
    let output = reference
        .wait_with_output()
        .map_err(|e| format!("reference daemon failed: {e}"))?;
    if !output.status.success() {
        return Err(format!("reference daemon exited with {}", output.status));
    }
    let expected: BTreeMap<usize, String> = outcome_lines(&output.stdout)
        .into_iter()
        .map(|(id, line)| (id, winner(&line)))
        .collect();
    if expected.len() != workload.len() {
        return Err(format!(
            "reference run answered {} of {} submissions",
            expected.len(),
            workload.len()
        ));
    }

    // Journal-backed victim, SIGKILLed mid-workload. Stdin stays open
    // so the daemon keeps serving right up to the kill.
    let flags = ["--journal", "j.tamjrnl", "--store", "w.tamstore"];
    let mut victim = spawn_serve(binary, dir, shards, &flags)
        .map_err(|e| format!("cannot spawn the victim daemon: {e}"))?;
    let mut stdin = victim.stdin.take().expect("piped stdin");
    stdin
        .write_all(script.as_bytes())
        .map_err(|e| format!("cannot feed the victim daemon: {e}"))?;
    let _ = stdin.flush();
    std::thread::sleep(Duration::from_millis(60));
    victim
        .kill()
        .map_err(|e| format!("cannot kill the victim daemon: {e}"))?;
    let output = victim
        .wait_with_output()
        .map_err(|e| format!("victim daemon failed: {e}"))?;
    drop(stdin);
    let before = outcome_lines(&output.stdout);

    // What the journal promised: every accepted submit.
    let journal = dir.join("j.tamjrnl");
    let bytes = std::fs::read(&journal).map_err(|e| format!("cannot read the journal: {e}"))?;
    let accepted: BTreeSet<usize> = decode(&bytes)
        .map_err(|e| format!("journal does not decode after the kill: {e}"))?
        .records
        .iter()
        .filter_map(|record| match record {
            JournalRecord::Submit { id, .. } => usize::try_from(*id).ok(),
            _ => None,
        })
        .collect();

    // Restart on the same journal + store; stale locks are expected.
    let flags = [
        "--journal",
        "j.tamjrnl",
        "--store",
        "w.tamstore",
        "--break-locks",
    ];
    let mut recovery = spawn_serve(binary, dir, shards, &flags)
        .map_err(|e| format!("cannot spawn the recovery daemon: {e}"))?;
    drop(recovery.stdin.take());
    let output = recovery
        .wait_with_output()
        .map_err(|e| format!("recovery daemon failed: {e}"))?;
    if !output.status.success() {
        return Err(format!("recovery daemon exited with {}", output.status));
    }
    let after = outcome_lines(&output.stdout);

    // Oracle 1: no accepted request lost, and recovery answers only
    // accepted ones. (The victim may additionally have answered a
    // request killed between queue accept and journal append.)
    let answered: BTreeSet<usize> = before.iter().chain(&after).map(|&(id, _)| id).collect();
    if !accepted.is_subset(&answered) {
        let lost: Vec<usize> = accepted.difference(&answered).copied().collect();
        return Err(format!(
            "accepted request(s) {lost:?} lost across the crash"
        ));
    }
    if let Some((id, _)) = after.iter().find(|(id, _)| !accepted.contains(id)) {
        return Err(format!(
            "recovery invented request {id} the journal never accepted"
        ));
    }

    // Oracle 2: winners byte-identical to the uninterrupted run.
    for (id, line) in before.iter().chain(&after) {
        match expected.get(id) {
            Some(want) if &winner(line) == want => {}
            Some(want) => {
                return Err(format!(
                    "request {id}: winner drifted across the crash\n  \
                     uninterrupted: {want}\n  crash cycle:   {}",
                    winner(line)
                ));
            }
            None => return Err(format!("request {id} was never submitted")),
        }
    }

    // Oracle 3: everything sealed → the journal is its empty header.
    let len = std::fs::metadata(&journal)
        .map_err(|e| format!("cannot stat the journal: {e}"))?
        .len();
    if len != 12 {
        return Err(format!(
            "journal holds {len} bytes after a clean recovery; expected the 12-byte empty header"
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "chaos: scenarios={} clients={} events={} seed={} mode={} (reproduce with --seed {})",
        args.scenarios, args.clients, args.events, args.seed, args.mode, args.seed
    );

    let crash_binary = if args.mode == "all" || args.mode == "crash" {
        let binary = tamopt_binary();
        if binary.is_none() {
            if args.mode == "crash" {
                eprintln!(
                    "chaos: --mode crash needs the tamopt binary; \
                     run `cargo build -p tamopt` in the same profile first"
                );
                return ExitCode::FAILURE;
            }
            eprintln!("chaos: tamopt binary not built in this profile; skipping crash scenarios");
        }
        binary
    } else {
        None
    };

    let mut rng = StdRng::seed_from_u64(args.seed);
    let mut session = Session {
        seed: args.seed,
        failures: Vec::new(),
    };
    for id in 0..args.scenarios {
        let scenario = gen_scenario(&mut rng, args.clients, args.events);
        // Alternate flat and sharded serving across scenarios.
        let shards = if id % 2 == 0 { None } else { Some(2) };
        if args.mode == "all" || args.mode == "replay" {
            check_replay(&mut session, id, &scenario);
        }
        if args.mode == "all" || args.mode == "socket" {
            check_socket(&mut session, id, &scenario, shards);
        }
        if let Some(binary) = &crash_binary {
            check_crash_restart(&mut session, id, &mut rng, shards, binary);
        }
        println!("chaos: scenario {id} checked");
    }

    if session.failures.is_empty() {
        println!("chaos: all scenarios clean");
        return ExitCode::SUCCESS;
    }
    let dir = std::path::Path::new("chaos-failures");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("chaos: cannot create {}: {e}", dir.display());
    }
    for (id, reason, script) in &session.failures {
        let name = format!("scenario-seed{}-{id}.txt", session.seed);
        let path = dir.join(&name);
        let body = format!(
            "# chaos failure: {reason}\n\
             # reproduce: cargo run --release --example chaos -- --seed {} \n\
             {script}",
            session.seed
        );
        match std::fs::write(&path, body) {
            Ok(()) => eprintln!("chaos: {reason} -> {name}"),
            Err(e) => eprintln!("chaos: cannot write {}: {e}", path.display()),
        }
    }
    eprintln!(
        "chaos: {} failure(s); scripts under {} (reproduce with --seed {})",
        session.failures.len(),
        dir.display(),
        session.seed
    );
    ExitCode::FAILURE
}
