//! Quantify the paper's motivation for multiple TAMs: sweep the TAM
//! count at a fixed total width and watch idle wires fall and wire-cycle
//! utilization rise.
//!
//! Section 1 of the paper argues that with more TAMs (i) cores ride TAMs
//! whose widths match their needs, so fewer assigned wires idle, and
//! (ii) test parallelism grows. [`tamopt::analysis`] measures both.
//!
//! Run with: `cargo run --release --example utilization`

use tamopt::analysis::UtilizationReport;
use tamopt::{benchmarks, CoOptimizer, TamOptError};

fn main() -> Result<(), TamOptError> {
    let width = 48;
    println!("SOC d695, W = {width}\n");
    println!(
        "{:>5}  {:>14}  {:>12}  {:>11}  {:>11}",
        "TAMs", "partition", "time (cy)", "idle wires", "utilization"
    );
    for max_tams in 1..=6 {
        let soc = benchmarks::d695();
        let architecture = CoOptimizer::new(soc, width).max_tams(max_tams).run()?;
        let report = UtilizationReport::new(&architecture);
        println!(
            "{:>5}  {:>14}  {:>12}  {:>11}  {:>10.1} %",
            architecture.num_tams(),
            architecture.tams.to_string(),
            architecture.soc_time(),
            report.idle_wires(),
            report.utilization() * 100.0
        );
    }

    // A detailed breakdown of the best architecture.
    let soc = benchmarks::d695();
    let architecture = CoOptimizer::new(soc, width).max_tams(6).run()?;
    let report = UtilizationReport::new(&architecture);
    println!("\ndetailed breakdown at {} TAMs:", architecture.num_tams());
    print!("{report}");
    println!("\nworst idle-wire offenders:");
    for c in report.worst_offenders(5) {
        println!(
            "  core {:>2} on TAM {} (w={:>2}): uses {:>2} wires, idles {:>2} for {} cycles",
            c.core + 1,
            c.tam + 1,
            c.tam_width,
            c.used_width,
            c.idle_wires(),
            c.test_time
        );
    }
    Ok(())
}
