//! Bring your own SOC: build cores through the API (or parse a `.soc`
//! file), then co-optimize and export.
//!
//! Run with: `cargo run --release --example custom_soc`

use std::error::Error;

use tamopt::soc::format::{parse_soc, write_soc};
use tamopt::{CoOptimizer, Core, Soc};

fn main() -> Result<(), Box<dyn Error>> {
    // A small camera-pipeline SOC: two scan-tested logic cores, a DSP,
    // and two memories.
    let soc = Soc::builder("camera_soc")
        .core(
            Core::builder("isp")
                .inputs(128)
                .outputs(96)
                .scan_chains([220, 220, 218, 215])
                .patterns(310)
                .build()?,
        )
        .core(
            Core::builder("dsp")
                .inputs(64)
                .outputs(64)
                .scan_chains([150, 150, 148])
                .patterns(540)
                .build()?,
        )
        .core(
            Core::builder("usb_ctrl")
                .inputs(40)
                .outputs(44)
                .scan_chains([90, 88])
                .patterns(120)
                .build()?,
        )
        .core(
            Core::builder("frame_buf")
                .inputs(58)
                .outputs(42)
                .patterns(8192)
                .build()?,
        )
        .core(
            Core::builder("cfg_rom")
                .inputs(20)
                .outputs(16)
                .patterns(2048)
                .build()?,
        )
        .build()?;

    println!("{soc}");
    println!("test-data volume: {} kbit\n", soc.complexity_number());

    // Optimize at a 24-wire budget, up to 3 TAMs.
    let arch = CoOptimizer::new(soc.clone(), 24).max_tams(3).run()?;
    println!("{}", arch.report());

    // Export the SOC in the .soc exchange dialect and prove it
    // round-trips.
    let text = write_soc(&soc);
    println!(".soc export:\n{text}");
    let reparsed = parse_soc(&text)?;
    assert_eq!(reparsed, soc);
    println!("round-trip OK");
    Ok(())
}
