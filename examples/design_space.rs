//! Design-space exploration: how testing time falls with TAM width, why
//! multiple TAMs help, and where the bottleneck core caps everything.
//!
//! Reproduces, on the p31108 stand-in, the saturation phenomenon the
//! paper discusses around its Tables 11–13: beyond a certain width the
//! SOC testing time is pinned to the fastest possible time of its
//! slowest core. The whole width sweep is **one** `Frontier` query —
//! `CoOptimizer::frontier` shares the wrapper time table and
//! warm-starts each width from the previous incumbents, yet returns at
//! every width exactly what an independent optimization would.
//!
//! Run with: `cargo run --release --example design_space`

use tamopt::wrapper::pareto;
use tamopt::{benchmarks, CoOptimizer, TamOptError};

fn main() -> Result<(), TamOptError> {
    let soc = benchmarks::p31108();
    println!("exploring {} ({} cores)\n", soc.name(), soc.num_cores());

    // Identify the bottleneck core and its saturated testing time.
    let (bottleneck, saturated) = pareto::bottleneck_core(&soc, 64)?;
    let core = soc.core(bottleneck).expect("bottleneck index is valid");
    println!(
        "bottleneck core: {} ({} patterns, {} terminals)",
        core.name(),
        core.patterns(),
        core.io_terminals()
    );
    println!("  its best possible testing time: {saturated} cycles");
    println!(
        "  it saturates at width {} — wires beyond that are idle\n",
        pareto::saturation_width(core, 64)?
    );

    // Sweep the total width with a single frontier query and watch the
    // SOC time hit the bound: one call, one table.
    let frontier = CoOptimizer::new(soc.clone(), 64)
        .max_tams(6)
        .frontier(16..=64, 8)?;
    println!("{}", frontier.report());

    println!("\nPer-core Pareto staircases (width -> time) at W = 32:");
    for (i, core) in soc.iter().enumerate().take(5) {
        let steps = pareto::pareto_widths(core, 32)?;
        let s: Vec<String> = steps
            .iter()
            .map(|p| format!("{}→{}", p.width, p.time))
            .collect();
        println!("  core {:>2} {:<8} {}", i + 1, core.name(), s.join(", "));
    }
    Ok(())
}
