//! Design-space exploration: how testing time falls with TAM width, why
//! multiple TAMs help, and where the bottleneck core caps everything.
//!
//! Reproduces, on the p31108 stand-in, the saturation phenomenon the
//! paper discusses around its Tables 11–13: beyond a certain width the
//! SOC testing time is pinned to the fastest possible time of its
//! slowest core.
//!
//! Run with: `cargo run --release --example design_space`

use tamopt::wrapper::pareto;
use tamopt::{benchmarks, CoOptimizer, TamOptError};

fn main() -> Result<(), TamOptError> {
    let soc = benchmarks::p31108();
    println!("exploring {} ({} cores)\n", soc.name(), soc.num_cores());

    // Identify the bottleneck core and its saturated testing time.
    let (bottleneck, saturated) = pareto::bottleneck_core(&soc, 64)?;
    let core = soc.core(bottleneck).expect("bottleneck index is valid");
    println!(
        "bottleneck core: {} ({} patterns, {} terminals)",
        core.name(),
        core.patterns(),
        core.io_terminals()
    );
    println!("  its best possible testing time: {saturated} cycles");
    println!(
        "  it saturates at width {} — wires beyond that are idle\n",
        pareto::saturation_width(core, 64)?
    );

    // Sweep the total width and watch the SOC time hit the bound.
    println!(
        "{:>5} {:>8} {:>14} {:>14}  note",
        "W", "TAMs", "time (cycles)", "lower bound"
    );
    for w in (16..=64).step_by(8) {
        let arch = CoOptimizer::new(soc.clone(), w).max_tams(6).run()?;
        let bound = pareto::bottleneck_lower_bound(&soc, w)?;
        let pinned = if arch.soc_time() == bound {
            "<- at the bottleneck bound"
        } else {
            ""
        };
        println!(
            "{:>5} {:>8} {:>14} {:>14}  {}",
            w,
            arch.num_tams(),
            arch.soc_time(),
            bound,
            pinned
        );
    }

    println!("\nPer-core Pareto staircases (width -> time) at W = 32:");
    for (i, core) in soc.iter().enumerate().take(5) {
        let steps = pareto::pareto_widths(core, 32)?;
        let s: Vec<String> = steps
            .iter()
            .map(|p| format!("{}→{}", p.width, p.time))
            .collect();
        println!("  core {:>2} {:<8} {}", i + 1, core.name(), s.join(", "));
    }
    Ok(())
}
