//! Shadow prices from the LP substrate: which TAM limits the SOC?
//!
//! The paper's final optimization step solves the Section 3.2 ILP; its
//! LP relaxation carries *dual values* — the marginal testing-time cost
//! of each constraint. A positive dual on a TAM's load row marks a TAM
//! that limits the makespan; zero-dual TAMs have slack. This example
//! builds the relaxation for d695 on a 3-TAM architecture, solves it
//! with duals through `tamopt::lp`, and reads the bottleneck structure
//! off the shadow prices.
//!
//! Run with: `cargo run --release --example lp_duals`

use tamopt::lp::{Problem, Relation};
use tamopt::{benchmarks, TimeTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let soc = benchmarks::d695();
    let widths = [8u32, 8, 16];
    let table = TimeTable::new(&soc, 32)?;
    let n = table.num_cores();
    let b = widths.len();

    // Variables: x[core*b + tam] (fractional assignment) and tau (last).
    let tau = n * b;
    let mut lp = Problem::minimize(n * b + 1);
    lp.set_objective(tau, 1.0)?;
    // tau >= sum of times on each TAM.
    for (t, &w) in widths.iter().enumerate() {
        let mut terms: Vec<(usize, f64)> = vec![(tau, 1.0)];
        for core in 0..n {
            terms.push((core * b + t, -(table.time(core, w) as f64)));
        }
        lp.constraint(&terms, Relation::Ge, 0.0)?;
    }
    // Every core assigned exactly once.
    for core in 0..n {
        let terms: Vec<(usize, f64)> = (0..b).map(|t| (core * b + t, 1.0)).collect();
        lp.constraint(&terms, Relation::Eq, 1.0)?;
        for t in 0..b {
            lp.set_upper_bound(core * b + t, 1.0)?;
        }
    }

    let (primal, dual) = lp.solve_with_duals()?;
    println!("LP relaxation of the Section 3.2 model, d695 on TAMs {widths:?}");
    println!("  fractional makespan : {:.1} cycles", primal.objective());
    println!(
        "  strong duality gap  : {:.2e}\n",
        (dual.dual_objective() - primal.objective()).abs()
    );

    println!("shadow prices of the TAM load rows (constraints 0..{b}):");
    for (t, &width) in widths.iter().enumerate() {
        println!(
            "  TAM {} (w={:>2}): dual {:+.4}  {}",
            t + 1,
            width,
            dual.dual(t),
            if dual.dual(t).abs() > 1e-9 {
                "binding — this TAM limits the makespan"
            } else {
                "slack — finishing early in the relaxation"
            }
        );
    }

    println!("\nper-core assignment duals (marginal cost of hosting each core):");
    let mut priced: Vec<(usize, f64)> = (0..n).map(|core| (core, dual.dual(b + core))).collect();
    priced.sort_by(|a, b| b.1.abs().total_cmp(&a.1.abs()));
    for (core, price) in priced.iter().take(5) {
        println!(
            "  {:<8} costs {:+9.1} cycles of makespan to host",
            soc.core(*core).expect("index in range").name(),
            price
        );
    }
    println!("\nThe expensive cores are the ones Core_assign places first; the LP's");
    println!("shadow prices recover the same priority order from pure duality.");
    Ok(())
}
