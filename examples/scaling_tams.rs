//! Why more TAMs help: sweep the number of TAMs at a fixed wire budget
//! and compare the paper's two observations — better width matching
//! (fewer idle wires) and more test parallelism.
//!
//! This is the motivation of the paper's Section 1 and its Table 3
//! (d695 up to 10 TAMs).
//!
//! Run with: `cargo run --release --example scaling_tams`

use tamopt::{benchmarks, CoOptimizer, Strategy, TamOptError};

fn main() -> Result<(), TamOptError> {
    let soc = benchmarks::d695();
    let total_width = 64;
    println!(
        "SOC {} at W = {total_width}: sweeping the TAM count (two-step method)\n",
        soc.name()
    );
    println!(
        "{:>4} {:>16} {:>14} {:>11} {:>10}",
        "B", "partition", "time (cycles)", "idle wires", "evaluated"
    );

    let mut best: Option<(u32, u64)> = None;
    for b in 1..=10u32 {
        let arch = CoOptimizer::new(soc.clone(), total_width)
            .exact_tams(b)
            .strategy(Strategy::TwoStep)
            .run()?;
        println!(
            "{:>4} {:>16} {:>14} {:>11} {:>10}",
            b,
            arch.tams.to_string(),
            arch.soc_time(),
            arch.idle_wires(),
            arch.stats.completed
        );
        if best.is_none_or(|(_, t)| arch.soc_time() < t) {
            best = Some((b, arch.soc_time()));
        }
    }

    let (b, t) = best.expect("the sweep ran");
    println!("\nbest TAM count: {b} ({t} cycles)");
    println!("(the paper's exhaustive baseline could not go past B = 3 on industrial SOCs)");
    Ok(())
}
