//! Quickstart: co-optimize the wrapper/TAM architecture of the d695
//! benchmark SOC at a 32-wire TAM budget.
//!
//! Run with: `cargo run --release --example quickstart`

use tamopt::{benchmarks, CoOptimizer, TamOptError};

fn main() -> Result<(), TamOptError> {
    // The academic benchmark SOC from the paper (2 ISCAS'85 + 8 ISCAS'89
    // cores).
    let soc = benchmarks::d695();
    println!("{soc}");

    // Design a test architecture: 32 TAM wires, up to 4 TAMs, the
    // paper's two-step methodology (heuristic search + one exact
    // assignment optimization).
    let architecture = CoOptimizer::new(soc, 32).max_tams(4).run()?;

    println!("{}", architecture.report());
    Ok(())
}
