//! Property-based tests of the extension layers on randomly generated
//! scenario SOCs: the wire-cycle decomposition of the analysis module,
//! the power co-optimization invariants, and the rail/bus ordering.

use proptest::prelude::*;
use tamopt_repro::analysis::UtilizationReport;
use tamopt_repro::power::{co_optimize_with_power, PowerConfig};
use tamopt_repro::rail::{design_rails, RailConfig, RailCostModel};
use tamopt_repro::schedule::TestSchedule;
use tamopt_repro::soc::scenarios;
use tamopt_repro::Strategy as OptStrategy;
use tamopt_repro::{CoOptimizer, Soc};

/// One of the four scenario families at a random small size and seed.
fn arb_soc() -> impl Strategy<Value = Soc> {
    (0usize..4, 4usize..10, 0u64..1000).prop_map(|(family, cores, seed)| {
        let build = [
            scenarios::logic_heavy,
            scenarios::memory_heavy,
            scenarios::bottleneck,
            scenarios::uniform,
        ][family];
        build(cores, seed).expect("scenario sizes >= MIN_CORES")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// used + idle-wire waste + slack always equals the W x T budget,
    /// and the schedule view agrees with the architecture.
    #[test]
    fn wire_cycle_budget_decomposes(soc in arb_soc(), width in 8u32..33, max_tams in 1u32..5) {
        let arch = CoOptimizer::new(soc, width)
            .max_tams(max_tams)
            .strategy(OptStrategy::Heuristic)
            .run()
            .expect("scenario SOCs are valid");
        let report = UtilizationReport::new(&arch);
        prop_assert_eq!(
            report.used_wire_cycles()
                + report.idle_wire_cycles()
                + report.slack_wire_cycles(),
            report.capacity_wire_cycles()
        );
        prop_assert_eq!(TestSchedule::serial(&arch).makespan(), arch.soc_time());
    }

    /// The power co-optimizer never violates its cap and never beats
    /// physics: its capped makespan is at least the unconstrained time
    /// of its own architecture.
    #[test]
    fn power_coopt_invariants(soc in arb_soc(), width in 8u32..25) {
        let powers: Vec<f64> =
            soc.iter().map(|c| 1.0 + c.scan_cells() as f64 / 400.0).collect();
        let hungriest = powers.iter().cloned().fold(f64::MIN, f64::max);
        let cap = hungriest * 1.5;
        let result = co_optimize_with_power(&soc, width, &powers, &PowerConfig::new(cap, 3))
            .expect("every core fits under 1.5x the hungriest");
        prop_assert!(result.schedule.peak_power(&powers) <= cap + 1e-9);
        prop_assert!(result.capped_makespan() >= result.unconstrained_time());
        // Every core scheduled exactly once.
        let mut seen: Vec<usize> =
            result.schedule.entries().iter().map(|e| e.core).collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..soc.num_cores()).collect::<Vec<_>>());
    }

    /// A rail design never beats the bus bottleneck bound at the same
    /// width, and its reported time recomputes from its assignment.
    #[test]
    fn rail_respects_bus_bounds(soc in arb_soc(), width in 4u32..25) {
        let model = RailCostModel::new(&soc, width).expect("positive width");
        let design = design_rails(&model, width, &RailConfig::up_to_rails(3))
            .expect("W >= 4 admits partitions");
        let bottleneck = (0..model.num_cores())
            .map(|c| model.bus_time(c, width))
            .max()
            .expect("non-empty soc");
        prop_assert!(design.soc_time() >= bottleneck);
        let recomputed = tamopt_repro::rail::RailAssignment::from_assignment(
            design.assignment.assignment().to_vec(),
            &model,
            &design.rails,
        );
        prop_assert_eq!(recomputed.soc_time(), design.soc_time());
    }
}
