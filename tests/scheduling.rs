//! Integration tests of the scheduling extension and the ITC'02 format
//! across the whole stack.

use proptest::prelude::*;
use tamopt_repro::schedule::{schedule_with_power_cap, TestSchedule};
use tamopt_repro::soc::itc02::{parse_itc02, write_itc02};
use tamopt_repro::{benchmarks, CoOptimizer};

#[test]
fn serial_schedule_matches_architecture_on_all_socs() {
    for soc in benchmarks::all() {
        let arch = CoOptimizer::new(soc.clone(), 24)
            .max_tams(3)
            .run()
            .expect("valid run");
        let schedule = TestSchedule::serial(&arch);
        assert_eq!(schedule.makespan(), arch.soc_time(), "{}", soc.name());
        assert_eq!(schedule.entries().len(), soc.num_cores());
    }
}

#[test]
fn tighter_caps_never_shorten_the_schedule() {
    let arch = CoOptimizer::new(benchmarks::d695(), 32)
        .max_tams(4)
        .run()
        .expect("valid run");
    let powers = vec![1.0; 10];
    let mut last = 0u64;
    for cap in [4.0f64, 3.0, 2.0, 1.0] {
        let s = schedule_with_power_cap(&arch, &powers, cap).expect("cap >= max power");
        assert!(s.makespan() >= last, "cap {cap} shortened the schedule");
        assert!(s.peak_power(&powers) <= cap + 1e-9);
        last = s.makespan();
    }
}

#[test]
fn itc02_roundtrip_preserves_optimization() {
    for soc in benchmarks::all() {
        let reparsed = parse_itc02(&write_itc02(&soc)).expect("own output parses");
        assert_eq!(reparsed, soc);
        let a = CoOptimizer::new(soc.clone(), 16)
            .max_tams(2)
            .run()
            .expect("valid run");
        let b = CoOptimizer::new(reparsed, 16)
            .max_tams(2)
            .run()
            .expect("valid run");
        assert_eq!(a.soc_time(), b.soc_time(), "{}", soc.name());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random power vectors: the cap always holds and every core is
    /// scheduled exactly once.
    #[test]
    fn power_cap_respected_for_random_ratings(
        seed_powers in proptest::collection::vec(0.1f64..3.0, 10),
        cap_slack in 0.0f64..2.0,
    ) {
        let arch =
            CoOptimizer::new(benchmarks::d695(), 24).max_tams(3).run().expect("valid run");
        let max_power = seed_powers.iter().copied().fold(0.0f64, f64::max);
        let cap = max_power + cap_slack;
        let s = schedule_with_power_cap(&arch, &seed_powers, cap).expect("cap fits all");
        prop_assert!(s.peak_power(&seed_powers) <= cap + 1e-9);
        let mut cores: Vec<usize> = s.entries().iter().map(|e| e.core).collect();
        cores.sort_unstable();
        prop_assert_eq!(cores, (0..10).collect::<Vec<_>>());
        prop_assert!(s.makespan() >= arch.soc_time());
    }
}
