//! Cross-crate integration tests: the full co-optimization pipeline on
//! every benchmark SOC, exercising tamopt-soc → tamopt-wrapper →
//! tamopt-assign → tamopt-partition through the `tamopt` facade.

use tamopt_repro::{benchmarks, CoOptimizer, Strategy};

#[test]
fn two_step_runs_on_every_benchmark_soc() {
    for soc in benchmarks::all() {
        let arch = CoOptimizer::new(soc.clone(), 32)
            .max_tams(4)
            .run()
            .unwrap_or_else(|e| panic!("{}: {e}", soc.name()));
        assert_eq!(arch.tams.total_width(), 32, "{}", soc.name());
        assert_eq!(arch.assignment.assignment().len(), soc.num_cores());
        assert!(arch.soc_time() > 0);
        // Every core's wrapper fits its TAM.
        for (i, w) in arch.wrappers.iter().enumerate() {
            let tam = arch.assignment.assignment()[i];
            assert!(w.used_width() <= arch.tams.width(tam));
        }
    }
}

#[test]
fn testing_time_decreases_with_width() {
    let soc = benchmarks::d695();
    let mut last = u64::MAX;
    for w in [8u32, 16, 32, 64] {
        let arch = CoOptimizer::new(soc.clone(), w)
            .max_tams(4)
            .run()
            .expect("valid run");
        assert!(
            arch.soc_time() <= last,
            "W={w}: {} worse than narrower budget {last}",
            arch.soc_time()
        );
        last = arch.soc_time();
    }
}

#[test]
fn exhaustive_is_a_lower_bound_for_two_step() {
    let soc = benchmarks::d695();
    for b in 1..=3u32 {
        let exhaustive = CoOptimizer::new(soc.clone(), 20)
            .exact_tams(b)
            .strategy(Strategy::Exhaustive)
            .run()
            .expect("valid run");
        let two_step = CoOptimizer::new(soc.clone(), 20)
            .exact_tams(b)
            .run()
            .expect("valid run");
        assert!(
            exhaustive.soc_time() <= two_step.soc_time(),
            "B={b}: exhaustive {} > two-step {}",
            exhaustive.soc_time(),
            two_step.soc_time()
        );
    }
}

#[test]
fn heuristic_close_to_exact_on_d695() {
    // The paper's headline quality claim: heuristic testing times are
    // comparable to exact (within ~20 % at matched B on d695).
    let soc = benchmarks::d695();
    for w in [16u32, 32, 48] {
        let exact = CoOptimizer::new(soc.clone(), w)
            .exact_tams(3)
            .strategy(Strategy::Exhaustive)
            .run()
            .expect("valid run");
        let heuristic = CoOptimizer::new(soc.clone(), w)
            .exact_tams(3)
            .strategy(Strategy::TwoStep)
            .run()
            .expect("valid run");
        let gap = heuristic.soc_time() as f64 / exact.soc_time() as f64;
        assert!(gap < 1.2, "W={w}: two-step {gap}x of exact");
    }
}

#[test]
fn bottleneck_bound_is_respected_everywhere() {
    use tamopt_repro::wrapper::pareto;
    for soc in benchmarks::all() {
        let bound = pareto::bottleneck_lower_bound(&soc, 48).expect("width 48 valid");
        let arch = CoOptimizer::new(soc.clone(), 48)
            .max_tams(6)
            .run()
            .expect("valid run");
        assert!(
            arch.soc_time() >= bound,
            "{}: architecture beat the physical lower bound",
            soc.name()
        );
    }
}

#[test]
fn p31108_saturates_at_its_bottleneck() {
    // The paper's plateau phenomenon (Tables 11-13) on the stand-in:
    // once W is large, the best architecture sits exactly on the
    // bottleneck-core bound.
    use tamopt_repro::wrapper::pareto;
    let soc = benchmarks::p31108();
    let arch = CoOptimizer::new(soc.clone(), 64)
        .max_tams(6)
        .run()
        .expect("valid run");
    let bound = pareto::bottleneck_lower_bound(&soc, 64).expect("width 64 valid");
    let slack = arch.soc_time() as f64 / bound as f64;
    assert!(
        slack < 1.10,
        "no plateau: time {} vs bound {bound}",
        arch.soc_time()
    );
}

#[test]
fn determinism_end_to_end() {
    let soc = benchmarks::p21241();
    let a = CoOptimizer::new(soc.clone(), 24)
        .max_tams(4)
        .run()
        .expect("valid run");
    let b = CoOptimizer::new(soc, 24)
        .max_tams(4)
        .run()
        .expect("valid run");
    assert_eq!(a.tams, b.tams);
    assert_eq!(a.assignment, b.assignment);
    assert_eq!(a.soc_time(), b.soc_time());
}
