//! Cross-solver agreement: the specialized branch-and-bound, the literal
//! Section 3.2 ILP (on our own simplex), and brute force must agree on
//! optimal SOC testing times.

use tamopt_repro::assign::exact::{self, ExactConfig};
use tamopt_repro::assign::ilp::{self, IlpAssignConfig};
use tamopt_repro::assign::{AssignResult, CostMatrix, TamSet};
use tamopt_repro::{benchmarks, TimeTable};

fn brute_force_optimum(costs: &CostMatrix) -> u64 {
    let n = costs.num_cores();
    let b = costs.num_tams();
    let mut best = u64::MAX;
    let mut assignment = vec![0usize; n];
    loop {
        best = best.min(AssignResult::from_assignment(assignment.clone(), costs).soc_time());
        let mut i = 0;
        loop {
            if i == n {
                return best;
            }
            assignment[i] += 1;
            if assignment[i] < b {
                break;
            }
            assignment[i] = 0;
            i += 1;
        }
    }
}

#[test]
fn three_solvers_agree_on_d695() {
    let soc = benchmarks::d695();
    let table = TimeTable::new(&soc, 48).expect("width 48 valid");
    for widths in [vec![24u32, 24], vec![8, 16, 24], vec![4, 4, 8, 16]] {
        let tams = TamSet::new(widths.clone()).expect("positive widths");
        let costs = CostMatrix::from_table(&table, &tams).expect("within table");
        let brute = brute_force_optimum(&costs);
        let bb = exact::solve(&costs, &ExactConfig::default()).expect("bb solves");
        let via_ilp = ilp::solve(&costs, &IlpAssignConfig::default()).expect("ilp solves");
        assert_eq!(bb.result.soc_time(), brute, "bb vs brute on {widths:?}");
        assert_eq!(
            via_ilp.result.soc_time(),
            brute,
            "ilp vs brute on {widths:?}"
        );
    }
}

#[test]
fn solvers_agree_on_industrial_socs() {
    // Brute force is out of reach at 28-32 cores; check B&B vs ILP only.
    for soc in [benchmarks::p21241(), benchmarks::p93791()] {
        let table = TimeTable::new(&soc, 32).expect("width 32 valid");
        let tams = TamSet::new([9, 23]).expect("positive widths");
        let costs = CostMatrix::from_table(&table, &tams).expect("within table");
        let bb = exact::solve(&costs, &ExactConfig::default()).expect("bb solves");
        let via_ilp = ilp::solve(&costs, &IlpAssignConfig::default()).expect("ilp solves");
        assert_eq!(
            bb.result.soc_time(),
            via_ilp.result.soc_time(),
            "disagreement on {}",
            soc.name()
        );
    }
}

#[test]
fn exact_solution_is_a_valid_assignment() {
    let soc = benchmarks::p31108();
    let table = TimeTable::new(&soc, 40).expect("width 40 valid");
    let tams = TamSet::new([10, 10, 20]).expect("positive widths");
    let costs = CostMatrix::from_table(&table, &tams).expect("within table");
    let sol = exact::solve(&costs, &ExactConfig::default()).expect("solves");
    // Recomputing the times from scratch agrees.
    let recomputed = AssignResult::from_assignment(sol.result.assignment().to_vec(), &costs);
    assert_eq!(recomputed, sol.result);
}
