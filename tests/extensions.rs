//! Cross-crate integration tests of the extension layers — utilization
//! analysis, the TestRail model, power-aware co-optimization and the
//! scenario generators — composed on top of the paper-reproduction
//! pipeline.

use tamopt_repro::analysis::UtilizationReport;
use tamopt_repro::power::{co_optimize_with_power, PowerConfig};
use tamopt_repro::rail::{design_rails, RailConfig, RailCostModel};
use tamopt_repro::schedule::TestSchedule;
use tamopt_repro::soc::scenarios;
use tamopt_repro::{benchmarks, CoOptimizer, Soc, Strategy};

fn powers(soc: &Soc) -> Vec<f64> {
    soc.iter()
        .map(|c| 1.0 + c.scan_cells() as f64 / 500.0)
        .collect()
}

#[test]
fn analysis_accounts_for_the_full_wire_cycle_budget_on_every_benchmark() {
    for soc in benchmarks::all() {
        let arch = CoOptimizer::new(soc.clone(), 32)
            .max_tams(4)
            .run()
            .unwrap_or_else(|e| panic!("{}: {e}", soc.name()));
        let report = UtilizationReport::new(&arch);
        assert_eq!(
            report.used_wire_cycles() + report.idle_wire_cycles() + report.slack_wire_cycles(),
            report.capacity_wire_cycles(),
            "{}: wire-cycle budget must decompose exactly",
            soc.name()
        );
        assert!(report.utilization() > 0.0 && report.utilization() <= 1.0);
        assert_eq!(report.idle_wires(), arch.idle_wires(), "{}", soc.name());
    }
}

#[test]
fn rail_architectures_cost_at_least_the_bus_exact_optimum() {
    // On a fixed partition with the same assignment space, the rail
    // model adds non-negative bypass penalties, so the *exact* bus
    // optimum lower-bounds any rail architecture at the same width.
    let soc = benchmarks::d695();
    for width in [16u32, 32] {
        let bus_exact = CoOptimizer::new(soc.clone(), width)
            .max_tams(4)
            .strategy(Strategy::Exhaustive)
            .run()
            .expect("exhaustive is feasible on d695 at B <= 4");
        let model = RailCostModel::new(&soc, width).expect("positive width");
        let rails = design_rails(&model, width, &RailConfig::up_to_rails(4))
            .expect("feasible partitions exist");
        assert!(
            rails.soc_time() >= bus_exact.soc_time(),
            "W={width}: rail {} beat the exact bus optimum {}",
            rails.soc_time(),
            bus_exact.soc_time()
        );
    }
}

#[test]
fn power_coopt_dominates_decoupled_flow_across_caps() {
    let soc = benchmarks::d695();
    let powers = powers(&soc);
    let plain = CoOptimizer::new(soc.clone(), 24)
        .max_tams(3)
        .strategy(Strategy::Heuristic)
        .run()
        .expect("heuristic run succeeds");
    for cap in [5.0f64, 7.0, 10.0] {
        let decoupled = tamopt_repro::schedule::schedule_with_power_cap(&plain, &powers, cap)
            .expect("all cores fit under these caps");
        let co = co_optimize_with_power(&soc, 24, &powers, &PowerConfig::new(cap, 3))
            .expect("same caps are feasible");
        assert!(
            co.capped_makespan() <= decoupled.makespan(),
            "cap {cap}: co-opt {} worse than decoupled {}",
            co.capped_makespan(),
            decoupled.makespan()
        );
        assert!(co.schedule.peak_power(&powers) <= cap + 1e-9);
    }
}

#[test]
fn scenarios_run_through_the_full_pipeline() {
    let socs = [
        scenarios::logic_heavy(12, 99).expect("valid"),
        scenarios::memory_heavy(12, 99).expect("valid"),
        scenarios::bottleneck(12, 99).expect("valid"),
        scenarios::uniform(12, 99).expect("valid"),
    ];
    for soc in socs {
        let arch = CoOptimizer::new(soc.clone(), 24)
            .max_tams(4)
            .run()
            .unwrap_or_else(|e| panic!("{}: {e}", soc.name()));
        assert_eq!(arch.tams.total_width(), 24, "{}", soc.name());
        // The schedule view agrees with the architecture.
        let schedule = TestSchedule::serial(&arch);
        assert_eq!(schedule.makespan(), arch.soc_time(), "{}", soc.name());
        // The SVG report renders for every scenario.
        let svg = schedule.to_svg(400);
        assert_eq!(
            svg.matches("<title>core ").count(),
            soc.num_cores(),
            "{}",
            soc.name()
        );
    }
}

#[test]
fn bottleneck_scenario_saturates_at_the_core_lower_bound() {
    let soc = scenarios::bottleneck(10, 7).expect("valid");
    let wide = CoOptimizer::new(soc.clone(), 64)
        .max_tams(6)
        .run()
        .expect("valid");
    let table = tamopt_repro::TimeTable::new(&soc, 64).expect("positive width");
    let bound = (0..soc.num_cores())
        .map(|c| table.min_time(c))
        .max()
        .unwrap();
    // With 64 wires the giant core dominates; the architecture reaches
    // (or nearly reaches) the architecture-independent lower bound.
    assert!(
        wide.soc_time() as f64 <= bound as f64 * 1.05,
        "time {} strays from bound {bound}",
        wide.soc_time()
    );
}

#[test]
fn uniform_scenario_prefers_equal_partitions() {
    let soc = scenarios::uniform(8, 3).expect("valid");
    let arch = CoOptimizer::new(soc, 32).max_tams(8).run().expect("valid");
    let widths = arch.tams.widths();
    let (min, max) = (
        widths.iter().min().copied().unwrap(),
        widths.iter().max().copied().unwrap(),
    );
    assert!(
        max - min <= widths[0].max(2),
        "uniform cores should get near-uniform TAMs, got {}",
        arch.tams
    );
}

#[test]
fn rail_and_bus_report_the_same_vocabulary() {
    // The two architecture reports can be diffed side by side: both use
    // the paper's partition notation and 1-based assignment vectors.
    let soc = benchmarks::d695();
    let bus = CoOptimizer::new(soc.clone(), 16)
        .max_tams(3)
        .run()
        .expect("valid");
    let model = RailCostModel::new(&soc, 16).expect("positive width");
    let rail = design_rails(&model, 16, &RailConfig::up_to_rails(3)).expect("feasible");
    let bus_report = bus.report();
    let rail_report = rail.report();
    for report in [&bus_report, &rail_report] {
        assert!(report.contains("testing time"));
        assert!(report.contains("(1") || report.contains("(2") || report.contains("(3"));
    }
    assert!(bus_report.contains("TAM 1"));
    assert!(rail_report.contains("rail 1"));
}
