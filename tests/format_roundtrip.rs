//! Integration tests for the `.soc` exchange format across the stack:
//! parse → optimize → export → re-parse → re-optimize must agree.

use tamopt_repro::soc::format::{parse_soc, write_soc};
use tamopt_repro::{benchmarks, CoOptimizer};

#[test]
fn optimization_invariant_under_format_roundtrip() {
    for soc in benchmarks::all() {
        let reparsed = parse_soc(&write_soc(&soc)).expect("round-trip parses");
        assert_eq!(reparsed, soc);
        let a = CoOptimizer::new(soc.clone(), 16)
            .max_tams(3)
            .run()
            .expect("valid run");
        let b = CoOptimizer::new(reparsed, 16)
            .max_tams(3)
            .run()
            .expect("valid run");
        assert_eq!(a.soc_time(), b.soc_time(), "{}", soc.name());
        assert_eq!(a.tams, b.tams);
    }
}

#[test]
fn handwritten_soc_file_optimizes() {
    let text = "\
# three-core toy SOC
soc toy
core alpha
  inputs 16
  outputs 16
  patterns 100
  scanchains 40 40 38
end
core beta
  inputs 8
  outputs 24
  patterns 60
  scanchains 20 20
end
core gamma
  inputs 30
  outputs 30
  patterns 5000
end
";
    let soc = parse_soc(text).expect("well-formed file");
    let arch = CoOptimizer::new(soc, 12)
        .max_tams(3)
        .run()
        .expect("valid run");
    assert_eq!(arch.tams.total_width(), 12);
    assert!(arch.soc_time() > 0);
}

#[test]
fn complexity_number_stable_across_roundtrip() {
    for soc in benchmarks::all() {
        let reparsed = parse_soc(&write_soc(&soc)).expect("round-trip parses");
        assert_eq!(reparsed.complexity_number(), soc.complexity_number());
    }
}
