//! Thin facade over the [`tamopt`] workspace for root-level examples and
//! integration tests.
//!
//! Everything re-exported here is documented in the `tamopt` crate
//! (`crates/core`), which is the primary public API of this repository.

pub use tamopt::*;
