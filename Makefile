# Local entry points mirroring the CI jobs (.github/workflows/ci.yml) so
# local and CI runs stay identical. `make verify` is the tier-1 command
# from ROADMAP.md.

# The determinism target pipes the CLI through grep; without pipefail a
# crashing binary would leave the pipeline (and the diff) green.
SHELL := /bin/bash

.PHONY: all build test verify doc-gate determinism serve-determinism \
        shard-determinism store-determinism recovery-determinism fuzz-smoke \
        chaos-soak alloc-gate bench-smoke bench-json bench-compare msrv-check \
        lint fmt clean

all: build test lint

# --- CI job: test -----------------------------------------------------------

build:
	cargo build --release

test:
	cargo test -q --workspace

# Tier-1 verify (ROADMAP.md).
verify:
	cargo build --release && cargo test -q

doc-gate:
	cargo test --doc -p tamopt

# Counting-allocator proof (also part of `make test`): the scan hot path
# must be allocation-free after warm-up and strictly cheaper than the
# allocate-per-partition seed path.
alloc-gate:
	cargo test --release -p tamopt_alloctest

# MSRV drift guard: Cargo.toml's rust-version must match the CI matrix.
msrv-check:
	@msrv="$$(sed -n 's/^rust-version = "\(.*\)"$$/\1/p' Cargo.toml)"; \
	test -n "$$msrv" || { echo "no rust-version in Cargo.toml"; exit 1; }; \
	grep -qF -- "- \"$$msrv\" # MSRV" .github/workflows/ci.yml \
	  || { echo "MSRV drift: Cargo.toml says $$msrv but the ci.yml matrix disagrees"; exit 1; }; \
	echo "MSRV $$msrv in sync with CI"

# --- CI job: fuzz-smoke -----------------------------------------------------

# A deterministic slice of the continuous fuzzer (examples/fuzz.rs) over
# all five untrusted input surfaces: the batch-manifest grammar, the
# serve line protocol, the ITC'02 parser, the store file format and the
# network framing layer.
# Failing inputs land in fuzz-failures/. The nightly fuzzer workflow
# (.github/workflows/fuzzer.yml) runs the same harness at scale.
fuzz-smoke:
	cargo run --release --example fuzz -- --iters 500 --seed 1

# --- CI job: chaos-soak -----------------------------------------------------

# A deterministic slice of the multi-client chaos harness
# (examples/chaos.rs): seeded scenarios checked both as deterministic
# replays (byte-identical across threads {1,2,8} × shards {flat,1,2,4})
# and over live loopback TCP sessions. Failing scenario scripts land in
# chaos-failures/. The nightly chaos workflow
# (.github/workflows/chaos.yml) runs the same harness at scale with
# seed = run id.
chaos-soak:
	cargo run --release --example chaos -- --seed 1 --scenarios 4

# --- CI job: determinism ----------------------------------------------------

determinism: serve-determinism shard-determinism store-determinism \
             recovery-determinism
	cargo test --release -p tamopt_partition --test determinism
	cargo test --release -p tamopt_rail --test determinism
	cargo test --release -p tamopt_service --test batch
	cargo build --release -p tamopt
	set -o pipefail; \
	for soc in d695 p31108; do \
	  ./target/release/tamopt --soc $$soc --width 32 --max-tams 6 --threads 1 \
	    | grep -v 'wall clock' > /tmp/$${soc}_t1.txt; \
	  ./target/release/tamopt --soc $$soc --width 32 --max-tams 6 --threads 4 \
	    | grep -v 'wall clock' > /tmp/$${soc}_t4.txt; \
	  diff /tmp/$${soc}_t1.txt /tmp/$${soc}_t4.txt || exit 1; \
	done
	set -o pipefail; \
	for manifest in batch kinds; do \
	  ./target/release/tamopt batch examples/$${manifest}.manifest --threads 1 \
	    | grep -v wall_clock > /tmp/$${manifest}_t1.json; \
	  ./target/release/tamopt batch examples/$${manifest}.manifest --threads 4 \
	    | grep -v wall_clock > /tmp/$${manifest}_t4.json; \
	  diff /tmp/$${manifest}_t1.json /tmp/$${manifest}_t4.json || exit 1; \
	done

# Live-daemon gate: the trace-replay suite plus a byte-level diff of the
# `tamopt serve` stream (outcome lines + final report, minus wall_clock*
# lines) at threads 1 vs 4 over the example traces — serve.trace for the
# classic point workload, kinds.trace for the mixed point/topk/frontier
# one.
serve-determinism:
	cargo test --release -p tamopt_service --test live
	cargo test --release -p tamopt_service --test kinds
	cargo build --release -p tamopt
	set -o pipefail; \
	for trace in serve kinds; do \
	  ./target/release/tamopt serve --threads 1 < examples/$${trace}.trace \
	    | grep -v wall_clock > /tmp/$${trace}_t1.txt; \
	  ./target/release/tamopt serve --threads 4 < examples/$${trace}.trace \
	    | grep -v wall_clock > /tmp/$${trace}_t4.txt; \
	  diff /tmp/$${trace}_t1.txt /tmp/$${trace}_t4.txt || exit 1; \
	done

# Sharded-daemon gate: the shard suite (threads {1,2,8} × shards
# {1,2,4} grid plus the proportional-split property) and a byte-level
# diff of `tamopt serve --shards 4` (shard-stamped outcome lines + final
# report, minus wall_clock* lines) at threads 1 vs 4 over the mixed-kind
# shard.trace.
shard-determinism:
	cargo test --release -p tamopt_service --test shard
	cargo test --release -p tamopt_service --test proptest_split
	cargo build --release -p tamopt
	set -o pipefail; \
	./target/release/tamopt serve --shards 4 --threads 1 < examples/shard.trace \
	  | grep -v wall_clock > /tmp/shard_t1.txt; \
	./target/release/tamopt serve --shards 4 --threads 4 < examples/shard.trace \
	  | grep -v wall_clock > /tmp/shard_t4.txt; \
	diff /tmp/shard_t1.txt /tmp/shard_t4.txt

# Warm-store gate: the store crate suite (format, crash safety, the
# committed v1 upgrade fixture), the service-level store suite
# (identical winners + strictly fewer completed evaluations, restart
# resume, replay-grid byte-identity against a pre-populated store), and
# an end-to-end CLI diff: populate a store once, then replay the trace
# at threads 1 vs 4 against byte copies of it (each run mutates its own
# copy at shutdown) — byte-identical streams within the warm condition.
store-determinism:
	cargo test --release -p tamopt_store
	cargo test --release -p tamopt_service --test store
	cargo build --release -p tamopt
	set -o pipefail; \
	./target/release/tamopt serve --threads 1 --store /tmp/seed.tamstore \
	  < examples/serve.trace > /dev/null; \
	cp /tmp/seed.tamstore /tmp/warm_t1.tamstore; \
	cp /tmp/seed.tamstore /tmp/warm_t4.tamstore; \
	./target/release/tamopt serve --threads 1 --store /tmp/warm_t1.tamstore \
	  < examples/serve.trace | grep -v wall_clock > /tmp/serve_warm_t1.txt; \
	./target/release/tamopt serve --threads 4 --store /tmp/warm_t4.tamstore \
	  < examples/serve.trace | grep -v wall_clock > /tmp/serve_warm_t4.txt; \
	diff /tmp/serve_warm_t1.txt /tmp/serve_warm_t4.txt

# Crash-safety gate: the service-level recovery suite (journal redo
# over threads {1,2,8} × shards {flat,1,2,4}, torn-tail recovery,
# deterministic overload shedding, the network in-flight quota), the
# end-to-end suite that SIGKILLs a real `--journal --store` daemon
# mid-workload and restarts it with `--break-locks` (accepted ⊆
# answered, winners byte-identical to an uninterrupted run, journal
# compacted back to its empty header), and a seeded slice of the chaos
# harness's kill-restart mode (which needs the release `tamopt` binary
# built first).
recovery-determinism:
	cargo test --release -p tamopt_service --test recovery
	cargo build --release -p tamopt
	cargo test --release -p tamopt --test recovery
	cargo run --release --example chaos -- --mode crash --seed 1 --scenarios 3

# --- CI job: bench-smoke ----------------------------------------------------

bench-smoke:
	cargo bench -p tamopt_bench --benches -- --test

# --- CI job: bench-results (perf trajectory) --------------------------------

bench-json:
	rm -rf target/criterion
	cargo bench -p tamopt_bench \
	  --bench bench_parallel --bench bench_scan --bench bench_batch \
	  --bench bench_serve --bench bench_topk --bench bench_shard \
	  --bench bench_store --bench bench_net --bench bench_journal
	cargo run --release -p tamopt_bench --bin bench_json -- \
	  --prefix parallel_ --out BENCH_parallel.json
	cargo run --release -p tamopt_bench --bin bench_json -- \
	  --prefix scan_ --out BENCH_scan.json
	cargo run --release -p tamopt_bench --bin bench_json -- \
	  --prefix batch_ --out BENCH_batch.json
	cargo run --release -p tamopt_bench --bin bench_json -- \
	  --prefix serve_ --out BENCH_serve.json
	cargo run --release -p tamopt_bench --bin bench_json -- \
	  --prefix topk_ --out BENCH_topk.json
	cargo run --release -p tamopt_bench --bin bench_json -- \
	  --prefix shard_ --out BENCH_shard.json
	cargo run --release -p tamopt_bench --bin bench_json -- \
	  --prefix store_ --out BENCH_store.json
	cargo run --release -p tamopt_bench --bin bench_json -- \
	  --prefix net_ --out BENCH_net.json
	cargo run --release -p tamopt_bench --bin bench_json -- \
	  --prefix journal_ --out BENCH_journal.json

# Perf-regression comparator (warn-only, mirrors the CI step): put the
# previous run's exports under baseline/ and compare. Missing baselines
# pass cleanly.
bench-compare:
	for family in parallel scan batch serve topk shard store net journal; do \
	  cargo run --release -p tamopt_bench --bin bench_json -- \
	    --compare baseline/BENCH_$${family}.json BENCH_$${family}.json \
	    --threshold 15 || exit 1; \
	done

# --- CI job: lint -----------------------------------------------------------

lint:
	cargo fmt --all --check
	cargo clippy --workspace --all-targets -- -D warnings

fmt:
	cargo fmt --all

clean:
	cargo clean
