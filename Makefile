# Local entry points mirroring the CI jobs (.github/workflows/ci.yml) so
# local and CI runs stay identical. `make verify` is the tier-1 command
# from ROADMAP.md.

.PHONY: all build test verify doc-gate bench-smoke lint fmt clean

all: build test lint

# --- CI job: test -----------------------------------------------------------

build:
	cargo build --release

test:
	cargo test -q --workspace

# Tier-1 verify (ROADMAP.md).
verify:
	cargo build --release && cargo test -q

doc-gate:
	cargo test --doc -p tamopt

# --- CI job: bench-smoke ----------------------------------------------------

bench-smoke:
	cargo bench -p tamopt_bench --benches -- --test

# --- CI job: lint -----------------------------------------------------------

lint:
	cargo fmt --all --check
	cargo clippy --workspace --all-targets -- -D warnings

fmt:
	cargo fmt --all

clean:
	cargo clean
