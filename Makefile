# Local entry points mirroring the CI jobs (.github/workflows/ci.yml) so
# local and CI runs stay identical. `make verify` is the tier-1 command
# from ROADMAP.md.

.PHONY: all build test verify doc-gate determinism bench-smoke lint fmt clean

all: build test lint

# --- CI job: test -----------------------------------------------------------

build:
	cargo build --release

test:
	cargo test -q --workspace

# Tier-1 verify (ROADMAP.md).
verify:
	cargo build --release && cargo test -q

doc-gate:
	cargo test --doc -p tamopt

# --- CI job: determinism ----------------------------------------------------

determinism:
	cargo test --release -p tamopt_partition --test determinism
	cargo build --release -p tamopt
	for soc in d695 p31108; do \
	  ./target/release/tamopt --soc $$soc --width 32 --max-tams 6 --threads 1 \
	    | grep -v 'wall clock' > /tmp/$${soc}_t1.txt; \
	  ./target/release/tamopt --soc $$soc --width 32 --max-tams 6 --threads 4 \
	    | grep -v 'wall clock' > /tmp/$${soc}_t4.txt; \
	  diff /tmp/$${soc}_t1.txt /tmp/$${soc}_t4.txt || exit 1; \
	done

# --- CI job: bench-smoke ----------------------------------------------------

bench-smoke:
	cargo bench -p tamopt_bench --benches -- --test
	cargo bench -p tamopt_bench --bench bench_parallel

# --- CI job: lint -----------------------------------------------------------

lint:
	cargo fmt --all --check
	cargo clippy --workspace --all-targets -- -D warnings

fmt:
	cargo fmt --all

clean:
	cargo clean
