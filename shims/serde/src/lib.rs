//! Offline stand-in for the parts of [`serde`] that this workspace uses.
//!
//! The build container has no access to crates.io, so this shim provides
//! just enough surface for `use serde::{Deserialize, Serialize}` plus
//! `#[derive(Serialize, Deserialize)]` to compile: empty marker traits and
//! no-op derive macros (see `shims/serde_derive`). No in-tree code performs
//! serialization yet, so no impls are required.
//!
//! When the real crate becomes available, point
//! `[workspace.dependencies] serde` back at crates.io (with the `derive`
//! feature) and delete this shim; no call sites need to change.
//!
//! [`serde`]: https://crates.io/crates/serde

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}
