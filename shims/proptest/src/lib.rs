//! Offline stand-in for the parts of [`proptest`] that this workspace uses.
//!
//! The build container has no access to crates.io, so this shim implements
//! the subset of the proptest API exercised by the workspace's property
//! tests:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header),
//! * the [`Strategy`](strategy::Strategy) trait with range, tuple, `Vec`,
//!   [`Just`](strategy::Just) and [`any`](arbitrary::any) strategies plus
//!   the `prop_map` / `prop_flat_map` / `prop_filter_map` adapters,
//! * [`collection::vec`],
//! * [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`].
//!
//! Semantics match real proptest for *generation and assertion*: each test
//! runs `cases` random inputs (deterministically seeded from the test path,
//! overridable via the `PROPTEST_CASES` and `PROPTEST_SEED` environment
//! variables) and panics on the first failing case, printing the failed
//! assertion. What the shim deliberately does **not** do is *shrinking* —
//! a failing case is reported as drawn, not minimized. When the real crate
//! becomes available, point `[workspace.dependencies] proptest` back at
//! crates.io and delete this shim; no call sites need to change.
//!
//! [`proptest`]: https://crates.io/crates/proptest

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Test-runner plumbing: configuration, RNG and case outcomes.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{Rng, SampleUniform, SeedableRng};
    use std::ops::RangeBounds;

    /// Runner configuration; only `cases` is honoured by the shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases each test must accumulate.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases, unless overridden by the
        /// `PROPTEST_CASES` environment variable.
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases: env_cases().unwrap_or(cases),
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self::with_cases(256)
        }
    }

    fn env_cases() -> Option<u32> {
        std::env::var("PROPTEST_CASES").ok()?.parse().ok()
    }

    /// Deterministic per-test random source.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Seeds the generator from the test's module path and name, XORed
        /// with `PROPTEST_SEED` when set, so every test draws its own
        /// reproducible stream.
        pub fn for_test(test_path: &str) -> Self {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_path.bytes() {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let env_seed: u64 = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0);
            Self {
                inner: StdRng::seed_from_u64(hash ^ env_seed),
            }
        }

        pub(crate) fn sample_range<T: SampleUniform, R: RangeBounds<T>>(&mut self, r: R) -> T {
            self.inner.gen_range(r)
        }

        pub(crate) fn next_u64(&mut self) -> u64 {
            self.inner.gen()
        }

        pub(crate) fn unit_f64(&mut self) -> f64 {
            self.inner.gen()
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was rejected (e.g. by `prop_assume!`) and should not
        /// count toward the case budget.
        Reject(String),
        /// An assertion failed; the whole test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with the given reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            Self::Fail(reason.into())
        }

        /// A rejection with the given reason.
        pub fn reject(reason: impl Into<String>) -> Self {
            Self::Reject(reason.into())
        }
    }

    /// Outcome of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

/// Value-generation strategies and their combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generated case was locally rejected (filtered out); the runner
    /// redraws without counting the case.
    #[derive(Debug)]
    pub struct Rejection;

    /// A source of random values of type `Self::Value`.
    ///
    /// The shim generates values directly (no intermediate `ValueTree`,
    /// hence no shrinking).
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value, or rejects the draw.
        fn new_value(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection>;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns
        /// for it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }

        /// Maps generated values through `f`, rejecting draws for which it
        /// returns `None`. `reason` mirrors the real API and is unused.
        fn prop_filter_map<O, F, W>(self, reason: W, f: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<O>,
            W: Into<String>,
        {
            let _ = reason.into();
            FilterMap { source: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> Result<O, Rejection> {
            self.source.new_value(rng).map(&self.f)
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug)]
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn new_value(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection> {
            let intermediate = self.source.new_value(rng)?;
            (self.f)(intermediate).new_value(rng)
        }
    }

    /// See [`Strategy::prop_filter_map`].
    #[derive(Debug)]
    pub struct FilterMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for FilterMap<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> Option<O>,
    {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> Result<O, Rejection> {
            // Retry locally a few times so sparse filters don't exhaust the
            // runner's global reject budget.
            for _ in 0..32 {
                if let Some(v) = (self.f)(self.source.new_value(rng)?) {
                    return Ok(v);
                }
            }
            Err(Rejection)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> Result<T, Rejection> {
            Ok(self.0.clone())
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> Result<$t, Rejection> {
                    Ok(rng.sample_range(self.clone()))
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> Result<$t, Rejection> {
                    Ok(rng.sample_range(self.clone()))
                }
            }
        )*};
    }
    int_range_strategies!(u8, u16, u32, u64, usize, f32, f64);

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn new_value(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection> {
                    Ok(($(self.$idx.new_value(rng)?,)+))
                }
            }
        )*};
    }
    tuple_strategies! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }

    /// A `Vec` of strategies generates element-wise (real proptest's
    /// homogeneous-collection behaviour).
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection> {
            self.iter().map(|s| s.new_value(rng)).collect()
        }
    }
}

/// `any::<T>()` — full-domain strategies for primitive types.
pub mod arbitrary {
    use crate::strategy::{Rejection, Strategy};
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value uniformly over the type's domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> Result<T, Rejection> {
            Ok(T::arbitrary(rng))
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::{Rejection, Strategy};
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Admissible lengths for a generated collection.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection> {
            let len = rng.sample_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// The glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident(
        $($pat:pat in $strat:expr),+ $(,)?
    ) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut passed: u32 = 0;
            let mut attempts: u64 = 0;
            let max_attempts = u64::from(config.cases) * 16 + 256;
            'cases: while passed < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest shim: test {} rejected too many generated cases \
                     ({} passed of {} wanted after {} draws)",
                    stringify!($name), passed, config.cases, attempts,
                );
                $(
                    let $pat = match $crate::strategy::Strategy::new_value(&($strat), &mut rng) {
                        ::core::result::Result::Ok(v) => v,
                        ::core::result::Result::Err(_) => continue 'cases,
                    };
                )+
                let outcome: $crate::test_runner::TestCaseResult = (move || {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => passed += 1,
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {}
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => panic!(
                        "proptest shim: {} failed after {} passing cases: {}\n\
                         (no shrinking in the offline shim; rerun with \
                         PROPTEST_SEED to vary inputs)",
                        stringify!($name), passed, msg,
                    ),
                }
            }
        }
    )*};
}

/// `assert!` for property tests: fails the case instead of panicking so
/// the runner can report it uniformly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` for property tests.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Rejects the current case without failing the test.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_vec() -> impl Strategy<Value = Vec<u32>> {
        crate::collection::vec(1u32..10, 2..5)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, 10u64..20), c in any::<bool>()) {
            prop_assert!(a < 10);
            prop_assert!((10..20).contains(&b));
            let _ = c;
        }

        #[test]
        fn collections_respect_sizes(v in small_vec()) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| (1..10).contains(&x)));
        }

        #[test]
        fn adapters_compose(
            n in (1usize..4).prop_flat_map(|n| {
                let elems: Vec<_> = (0..n).map(|_| 5u32..9).collect();
                elems.prop_map(move |v| (n, v))
            }),
        ) {
            let (n, v) = n;
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn filter_and_assume(x in (0u32..100).prop_filter_map("even", |x| {
            (x % 2 == 0).then_some(x)
        })) {
            prop_assume!(x != 2);
            prop_assert!(x % 2 == 0, "odd value {} survived the filter", x);
        }

        #[test]
        fn just_yields_its_value(x in Just(41)) {
            prop_assert_eq!(x + 1, 42);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let s = small_vec();
        let mut a = crate::test_runner::TestRng::for_test("same::path");
        let mut b = crate::test_runner::TestRng::for_test("same::path");
        for _ in 0..8 {
            assert_eq!(s.new_value(&mut a).ok(), s.new_value(&mut b).ok());
        }
    }
}
