//! Offline stand-in for the parts of [`criterion`] that this workspace
//! uses.
//!
//! The build container has no access to crates.io, so this shim implements
//! the subset of the criterion API exercised by the benches in
//! `crates/bench/benches`: [`criterion_group!`] / [`criterion_main!`],
//! [`Criterion::benchmark_group`], `bench_function` / `bench_with_input` /
//! `sample_size` / `finish`, [`Bencher::iter`], [`BenchmarkId`] and
//! [`black_box`].
//!
//! Timing is deliberately simple — calibrate the per-iteration cost once,
//! then time a batch sized to roughly `sample_size × 10 ms` of wall clock
//! and report mean time per iteration. There are no statistics or plots,
//! but each measurement **is** persisted in the real crate's on-disk
//! layout — `target/criterion/<id>/new/estimates.json` with a
//! `mean.point_estimate` in nanoseconds — so estimate extractors (CI's
//! perf-trajectory step, `tamopt_bench`'s `bench_json` bin) work
//! unchanged against shim and real criterion alike. Criterion's `--test`
//! CLI mode (run every benchmark body exactly once, measure nothing) is
//! supported because CI uses it as a bench-rot smoke check; `--bench`,
//! `--quiet`, `--verbose` and filter arguments are accepted and ignored.
//! When the real crate becomes available, point
//! `[workspace.dependencies] criterion` back at crates.io and delete this
//! shim; no call sites need to change.
//!
//! [`criterion`]: https://crates.io/crates/criterion

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::path::PathBuf;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter, rendered
    /// `name/parameter` as the real crate does.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Times one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` for the number of iterations the harness chose and
    /// records the total wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark harness handle passed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    test_mode: bool,
}

impl Criterion {
    /// Applies CLI arguments; only `--test` changes behaviour.
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        self.test_mode = std::env::args().any(|a| a == "--test");
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: group_name.into(),
            sample_size: 10,
        }
    }

    /// Benchmarks `routine` outside any group.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        routine: R,
    ) -> &mut Self {
        let id = id.into();
        run_one(self.test_mode, &id.id, 10, routine);
        self
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count, which scales this shim's measurement budget.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `routine` under `self.name/id`.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        routine: R,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(self.criterion.test_mode, &full, self.sample_size, routine);
        self
    }

    /// Benchmarks `routine` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self {
        self.bench_function(id, |b| routine(b, input))
    }

    /// Ends the group (a no-op in the shim, kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one<R: FnMut(&mut Bencher)>(test_mode: bool, id: &str, sample_size: usize, mut routine: R) {
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    routine(&mut bencher);
    if test_mode {
        println!("test {id} ... ok");
        return;
    }
    // Size the measured batch to ~10 ms per sample of calibrated cost,
    // capped so pathologically slow bodies still finish promptly.
    let calibration = bencher.elapsed.max(Duration::from_nanos(1));
    let budget = Duration::from_millis(10) * sample_size as u32;
    let iters = (budget.as_nanos() / calibration.as_nanos()).clamp(1, 100_000) as u64;
    bencher.iters = iters;
    routine(&mut bencher);
    let per_iter = bencher.elapsed / iters as u32;
    println!("{id:<60} time: [{per_iter:?} per iter, {iters} iters]");
    save_estimate(id, bencher.elapsed.as_nanos() as f64 / iters as f64);
}

/// Where measurements are persisted: `$CRITERION_HOME`, else
/// `$CARGO_TARGET_DIR/criterion`, else `target/criterion` under the
/// nearest ancestor directory holding a `Cargo.lock` (cargo runs bench
/// binaries from the package root, which for workspace members is not
/// the directory `target/` lives in).
fn criterion_dir() -> Option<PathBuf> {
    if let Ok(dir) = std::env::var("CRITERION_HOME") {
        return Some(PathBuf::from(dir));
    }
    if let Ok(dir) = std::env::var("CARGO_TARGET_DIR") {
        return Some(PathBuf::from(dir).join("criterion"));
    }
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.lock").is_file() {
            return Some(dir.join("target").join("criterion"));
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Writes `<criterion dir>/<id>/new/estimates.json` in the subset of the
/// real crate's schema that downstream extractors read. Persistence is
/// best-effort: an unwritable disk must never fail a benchmark run.
fn save_estimate(id: &str, mean_ns: f64) {
    let Some(root) = criterion_dir() else { return };
    let dir = id
        .split('/')
        .fold(root, |dir, part| dir.join(part))
        .join("new");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let json = format!(
        "{{\"mean\":{{\"confidence_interval\":{{\"confidence_level\":0.95,\
         \"lower_bound\":{mean_ns},\"upper_bound\":{mean_ns}}},\
         \"point_estimate\":{mean_ns},\"standard_error\":0.0}}}}"
    );
    let _ = std::fs::write(dir.join("estimates.json"), json);
}

/// Declares a function running a list of benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a benchmark binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("free_fn", |b| b.iter(|| black_box(2 + 2)));
        let mut group = c.benchmark_group("group");
        group.sample_size(2);
        group.bench_function(BenchmarkId::new("sum", 8), |b| {
            b.iter(|| (0..8u64).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
            b.iter(|| n * n)
        });
        group.finish();
    }

    #[test]
    fn harness_runs_benchmarks() {
        let mut criterion = Criterion { test_mode: true };
        sample_bench(&mut criterion);
    }

    #[test]
    fn measurement_mode_completes_quickly() {
        let mut criterion = Criterion { test_mode: false };
        let start = Instant::now();
        criterion.bench_function("tiny", |b| b.iter(|| black_box(1u64.wrapping_add(2))));
        assert!(start.elapsed() < Duration::from_secs(30));
    }

    #[test]
    fn estimates_persist_in_the_real_criterion_layout() {
        let home = std::env::temp_dir().join("criterion-shim-test");
        std::fs::remove_dir_all(&home).ok();
        std::env::set_var("CRITERION_HOME", &home);
        save_estimate("group/fn/4", 1234.5);
        std::env::remove_var("CRITERION_HOME");
        let path = home.join("group/fn/4/new/estimates.json");
        let json = std::fs::read_to_string(&path).expect("estimate written");
        assert!(json.contains("\"mean\""));
        assert!(json.contains("\"point_estimate\":1234.5"));
        std::fs::remove_dir_all(&home).ok();
    }

    #[test]
    fn criterion_dir_resolves_somewhere() {
        // Under cargo the walk-up always finds the workspace Cargo.lock.
        assert!(criterion_dir().is_some());
    }
}
