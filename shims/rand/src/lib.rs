//! Offline stand-in for the parts of the [`rand`] crate (0.8-era API) that
//! this workspace uses.
//!
//! The build container for this repository has no access to crates.io, so
//! the workspace vendors a minimal, dependency-free implementation of the
//! exact API surface it consumes: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`] and [`Rng::gen_range`] over integer and float ranges.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — deterministic
//! in the seed, which is all the workspace relies on (every call site seeds
//! explicitly via `seed_from_u64`). It is **not** the same stream as the
//! real `StdRng`, and it is not cryptographically secure. When the real
//! crate becomes available, point `[workspace.dependencies] rand` back at
//! crates.io and delete this shim; no call sites need to change.
//!
//! [`rand`]: https://crates.io/crates/rand

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Bound, RangeBounds};

/// Random number generators.
pub mod rngs {
    /// A seeded xoshiro256** generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_u64_seed(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }

        pub(crate) fn next_word(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A random number generator: the subset of `rand::RngCore` the workspace
/// needs.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_word()
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng::from_u64_seed(seed)
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value from its "standard" distribution (`[0, 1)` for
    /// floats, uniform over the full domain for integers and `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`, which may be half-open (`a..b`) or
    /// inclusive (`a..=b`). Panics on an empty range, as the real crate
    /// does.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: SampleUniform,
        R: RangeBounds<T>,
    {
        T::sample_range(self, &range)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the standard distribution for `Self`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types samplable by [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    /// Draws one value uniformly from `range`.
    fn sample_range<G: RngCore, R: RangeBounds<Self>>(rng: &mut G, range: &R) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<G: RngCore, R: RangeBounds<Self>>(rng: &mut G, range: &R) -> Self {
                let lo: u128 = match range.start_bound() {
                    Bound::Included(&v) => v as u128,
                    Bound::Excluded(&v) => v as u128 + 1,
                    Bound::Unbounded => 0,
                };
                let hi: u128 = match range.end_bound() {
                    Bound::Included(&v) => v as u128 + 1,
                    Bound::Excluded(&v) => v as u128,
                    Bound::Unbounded => <$t>::MAX as u128 + 1,
                };
                assert!(lo < hi, "cannot sample empty range");
                let span = hi - lo;
                // Modulo bias is ≤ span/2^64, negligible for the spans the
                // workspace draws (all far below 2^32).
                lo as $t + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<G: RngCore, R: RangeBounds<Self>>(rng: &mut G, range: &R) -> Self {
                let lo = match range.start_bound() {
                    Bound::Included(&v) | Bound::Excluded(&v) => v,
                    Bound::Unbounded => 0.0,
                };
                let hi = match range.end_bound() {
                    Bound::Included(&v) | Bound::Excluded(&v) => v,
                    Bound::Unbounded => 1.0,
                };
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
uniform_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_the_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: u32 = c.gen_range(0..u32::MAX);
        let reference: u32 = StdRng::seed_from_u64(43).gen_range(0..u32::MAX);
        assert_eq!(same, reference);
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5u64..=9);
            assert!((5..=9).contains(&w));
            let f = rng.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&f));
            let unit: f64 = rng.gen();
            assert!((0.0..1.0).contains(&unit));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.gen_range(5u32..5);
    }
}
