//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros backing
//! the offline [`serde`] shim (see `shims/serde`).
//!
//! The workspace derives these traits on its public data types so the API
//! is serialization-ready, but nothing in-tree performs serialization yet
//! (there is no `serde_json` in the container). The derives therefore emit
//! no code at all: the attribute compiles, and no trait impl exists until
//! the real `serde`/`serde_derive` are restored from crates.io.

use proc_macro::TokenStream;

/// Accepts and discards a `#[derive(Serialize)]` invocation.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards a `#[derive(Deserialize)]` invocation.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
